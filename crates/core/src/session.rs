//! The observable solve session: [`Session`], [`RunObserver`] and the
//! built-in observers.
//!
//! The seed's `TransportSolver::run()` was a black box: it emitted nothing
//! until it returned a finished [`SolveOutcome`], so drivers that wanted
//! per-iteration residuals (ablation harnesses, progress displays, the
//! planned distributed drivers) had to parse the outcome's history vectors
//! after the fact.  This module splits that monolith:
//!
//! * [`RunObserver`] is the streaming interface — a trait with no-op
//!   defaults whose hooks fire at every outer iteration boundary, every
//!   inner iteration, every transport sweep and every Krylov residual;
//! * [`Session`] owns the solver state across runs and drives it under an
//!   observer, so callers hold one object instead of a `Problem` plus a
//!   `TransportSolver` plus an outcome;
//! * [`RecordingObserver`] records the stream and reconstructs exactly the
//!   history vectors a [`SolveOutcome`] reports — the equivalence the
//!   integration tests pin down bit-for-bit.
//!
//! ```
//! use unsnap_core::builder::ProblemBuilder;
//! use unsnap_core::session::{RecordingObserver, Session};
//!
//! let mut session = Session::new(&ProblemBuilder::tiny().build().unwrap()).unwrap();
//! let mut recorder = RecordingObserver::default();
//! let outcome = session.run_observed(&mut recorder).unwrap();
//! assert_eq!(recorder.sweep_count, outcome.sweep_count);
//! assert_eq!(recorder.convergence_history, outcome.convergence_history);
//! ```

use crate::error::Result;
use crate::layout::FluxStorage;
use crate::problem::Problem;
use crate::solver::{SolveOutcome, TransportSolver};

/// Streaming hooks into a running transport solve.
///
/// Every method has a no-op default, so observers implement only the
/// events they care about.  Hooks are called synchronously from the solver
/// thread between numerical steps; heavy work in a hook slows the solve
/// but cannot corrupt it.
pub trait RunObserver {
    /// An outer (group-coupling Jacobi) iteration is starting.
    fn on_outer_start(&mut self, outer: usize) {
        let _ = outer;
    }

    /// An outer iteration finished; `converged` reports whether the inner
    /// solve met the problem's tolerance within this outer.
    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        let _ = (outer, converged);
    }

    /// An inner iterate completed with the given maximum relative
    /// scalar-flux change (one event per entry of
    /// [`SolveOutcome::convergence_history`]).
    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        let _ = (inner, relative_change);
    }

    /// A full transport sweep completed.  `sweep` is the running sweep
    /// count (1-based) and `seconds` the wall-clock time of this sweep.
    fn on_sweep(&mut self, sweep: usize, seconds: f64) {
        let _ = (sweep, seconds);
    }

    /// A Krylov iteration reported a relative residual (one event per
    /// entry of [`SolveOutcome::krylov_residual_history`]; never fires
    /// under plain source iteration).
    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        let _ = (iteration, relative_residual);
    }
}

/// The silent observer used when nobody is watching.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {}

/// An observer that records the event stream and reconstructs the history
/// vectors of a [`SolveOutcome`].
///
/// After a run, [`RecordingObserver::convergence_history`] and
/// [`RecordingObserver::krylov_residual_history`] equal the outcome's
/// fields element-for-element, and [`RecordingObserver::sweep_count`]
/// equals [`SolveOutcome::sweep_count`] — streaming loses nothing relative
/// to the post-hoc summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingObserver {
    /// Outer iterations started.
    pub outers_started: usize,
    /// Outer iterations completed.
    pub outers_completed: usize,
    /// Inner iterations observed (entries of `convergence_history`).
    pub convergence_history: Vec<f64>,
    /// Krylov residuals observed, concatenated across outer iterations.
    pub krylov_residual_history: Vec<f64>,
    /// Transport sweeps observed.
    pub sweep_count: usize,
    /// Wall-clock seconds summed over the observed sweeps.
    pub sweep_seconds: f64,
    /// Whether any outer iteration reported inner convergence.
    pub converged: bool,
}

impl RecordingObserver {
    /// Reset the recording so the observer can watch another run.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

impl RunObserver for RecordingObserver {
    fn on_outer_start(&mut self, _outer: usize) {
        self.outers_started += 1;
    }

    fn on_outer_end(&mut self, _outer: usize, converged: bool) {
        self.outers_completed += 1;
        self.converged |= converged;
    }

    fn on_inner_iteration(&mut self, _inner: usize, relative_change: f64) {
        self.convergence_history.push(relative_change);
    }

    fn on_sweep(&mut self, sweep: usize, seconds: f64) {
        self.sweep_count = sweep;
        self.sweep_seconds += seconds;
    }

    fn on_krylov_residual(&mut self, _iteration: usize, relative_residual: f64) {
        self.krylov_residual_history.push(relative_residual);
    }
}

/// An owned, observable transport solve.
///
/// A `Session` wraps a [`TransportSolver`] and keeps the outcome of every
/// run, so drivers hold a single object across repeated (warm-started)
/// solves.  Running the same session twice continues from the flux state
/// the previous run left behind — the behaviour a restart/continuation
/// driver wants; build a fresh session for an independent solve.
pub struct Session {
    solver: TransportSolver,
    outcomes: Vec<SolveOutcome>,
}

impl Session {
    /// Build a session for a validated problem.
    pub fn new(problem: &Problem) -> Result<Self> {
        Ok(Self {
            solver: TransportSolver::new(problem)?,
            outcomes: Vec::new(),
        })
    }

    /// The problem this session solves.
    pub fn problem(&self) -> &Problem {
        self.solver.problem()
    }

    /// The underlying solver (schedules, quadrature, flux state).
    pub fn solver(&self) -> &TransportSolver {
        &self.solver
    }

    /// Mutable access to the underlying solver for advanced drivers.
    pub fn solver_mut(&mut self) -> &mut TransportSolver {
        &mut self.solver
    }

    /// Run the full outer/inner iteration structure silently.
    pub fn run(&mut self) -> Result<SolveOutcome> {
        self.run_observed(&mut NoopObserver)
    }

    /// Run the full outer/inner iteration structure, streaming events to
    /// `observer` as they happen.
    pub fn run_observed(&mut self, observer: &mut dyn RunObserver) -> Result<SolveOutcome> {
        let outcome = self.solver.run_observed(observer)?;
        self.outcomes.push(outcome.clone());
        Ok(outcome)
    }

    /// The outcome of the most recent run, if any.
    pub fn last_outcome(&self) -> Option<&SolveOutcome> {
        self.outcomes.last()
    }

    /// The outcomes of every run of this session, in order.
    pub fn outcomes(&self) -> &[SolveOutcome] {
        &self.outcomes
    }

    /// The scalar flux after the most recent run.
    pub fn scalar_flux(&self) -> &FluxStorage {
        self.solver.scalar_flux()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;

    #[test]
    fn session_runs_and_keeps_outcomes() {
        let mut session = Session::new(&Problem::tiny()).unwrap();
        assert!(session.last_outcome().is_none());
        let outcome = session.run().unwrap();
        assert!(outcome.scalar_flux_total > 0.0);
        assert_eq!(session.outcomes().len(), 1);
        assert_eq!(session.last_outcome(), Some(&outcome));
        assert_eq!(session.problem(), &Problem::tiny());
    }

    #[test]
    fn recording_observer_matches_outcome_for_source_iteration() {
        let mut session = Session::new(&Problem::tiny()).unwrap();
        let mut recorder = RecordingObserver::default();
        let outcome = session.run_observed(&mut recorder).unwrap();
        assert_eq!(recorder.sweep_count, outcome.sweep_count);
        assert_eq!(recorder.convergence_history, outcome.convergence_history);
        assert_eq!(
            recorder.krylov_residual_history,
            outcome.krylov_residual_history
        );
        assert_eq!(recorder.outers_started, outcome.outer_iterations);
        assert_eq!(recorder.outers_completed, outcome.outer_iterations);
        assert_eq!(recorder.converged, outcome.converged);
    }

    #[test]
    fn recording_observer_matches_outcome_for_sweep_gmres() {
        let problem = Problem::tiny().with_strategy(StrategyKind::SweepGmres);
        let mut session = Session::new(&problem).unwrap();
        let mut recorder = RecordingObserver::default();
        let outcome = session.run_observed(&mut recorder).unwrap();
        assert!(!recorder.krylov_residual_history.is_empty());
        assert_eq!(recorder.sweep_count, outcome.sweep_count);
        assert_eq!(recorder.convergence_history, outcome.convergence_history);
        assert_eq!(
            recorder.krylov_residual_history,
            outcome.krylov_residual_history
        );
    }

    #[test]
    fn rerunning_a_session_warm_starts() {
        let mut p = Problem::tiny();
        p.convergence_tolerance = 1e-12;
        p.inner_iterations = 4;
        let mut session = Session::new(&p).unwrap();
        let first = session.run().unwrap();
        let second = session.run().unwrap();
        // The second run starts from the first run's flux, so its first
        // iterate moves far less.
        assert!(second.convergence_history[0] < first.convergence_history[0]);
        assert_eq!(session.outcomes().len(), 2);
    }

    #[test]
    fn recorder_clear_resets() {
        let mut r = RecordingObserver {
            sweep_count: 3,
            ..Default::default()
        };
        r.clear();
        assert_eq!(r, RecordingObserver::default());
    }
}
