//! The observable solve session: [`Session`], [`RunObserver`] and the
//! built-in observers.
//!
//! The seed's `TransportSolver::run()` was a black box: it emitted nothing
//! until it returned a finished [`SolveOutcome`], so drivers that wanted
//! per-iteration residuals (ablation harnesses, progress displays, the
//! planned distributed drivers) had to parse the outcome's history vectors
//! after the fact.  This module splits that monolith:
//!
//! * [`RunObserver`] is the streaming interface — a trait with no-op
//!   defaults whose hooks fire at every outer iteration boundary, every
//!   inner iteration, every transport sweep and every Krylov residual;
//! * [`Session`] owns the solver state across runs and drives it under an
//!   observer, so callers hold one object instead of a `Problem` plus a
//!   `TransportSolver` plus an outcome;
//! * [`RecordingObserver`] records the stream and reconstructs exactly the
//!   history vectors a [`SolveOutcome`] reports — the equivalence the
//!   integration tests pin down bit-for-bit.
//!
//! ```
//! use unsnap_core::builder::ProblemBuilder;
//! use unsnap_core::session::{RecordingObserver, Session};
//!
//! let mut session = Session::new(&ProblemBuilder::tiny().build().unwrap()).unwrap();
//! let mut recorder = RecordingObserver::default();
//! let outcome = session.run_observed(&mut recorder).unwrap();
//! assert_eq!(recorder.sweep_count, outcome.sweep_count);
//! assert_eq!(recorder.convergence_history, outcome.convergence_history);
//! ```

use crate::error::Result;
use crate::layout::FluxStorage;
use crate::problem::Problem;
use crate::solver::{SolveOutcome, TransportSolver};

/// The named phases of a transport solve, as reported through
/// [`RunObserver::on_phase_start`]/[`RunObserver::on_phase_end`].
///
/// Phases are the units of the wall-clock breakdown: every span the
/// solvers time is attributed to exactly one of these.  Phase *counts*
/// are deterministic (one span per firing site per iteration); phase
/// *seconds* are wall-clock and excluded from determinism comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Element-integral precomputation and schedule construction in
    /// `TransportSolver::new` (reported once, at the start of the
    /// solver's first observed run).
    Preassembly,
    /// Building the group-coupled source (`compute_source` /
    /// `compute_external_source`) ahead of a sweep.
    SourceAssembly,
    /// A full transport sweep over all angles and cells.
    Sweep,
    /// The block-Jacobi halo exchange (publishing the previous iterate's
    /// angular flux to neighbouring subdomains).
    HaloExchange,
    /// The GMRES region of a `SweepGmres` inner solve.
    Krylov,
    /// The low-order DSA conjugate-gradient correction solve.
    AccelCg,
}

impl Phase {
    /// Every phase, in breakdown-table order.
    pub fn all() -> [Phase; 6] {
        [
            Phase::Preassembly,
            Phase::SourceAssembly,
            Phase::Sweep,
            Phase::HaloExchange,
            Phase::Krylov,
            Phase::AccelCg,
        ]
    }

    /// A stable dense index (`0..6`), usable as a table slot.
    pub fn index(self) -> usize {
        match self {
            Phase::Preassembly => 0,
            Phase::SourceAssembly => 1,
            Phase::Sweep => 2,
            Phase::HaloExchange => 3,
            Phase::Krylov => 4,
            Phase::AccelCg => 5,
        }
    }

    /// The snake_case label used in JSON output and tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Preassembly => "preassembly",
            Phase::SourceAssembly => "source_assembly",
            Phase::Sweep => "sweep",
            Phase::HaloExchange => "halo_exchange",
            Phase::Krylov => "krylov",
            Phase::AccelCg => "accel_cg",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Streaming hooks into a running transport solve.
///
/// Every method has a no-op default, so observers implement only the
/// events they care about.  Hooks are called synchronously from the solver
/// thread between numerical steps; heavy work in a hook slows the solve
/// but cannot corrupt it.
pub trait RunObserver {
    /// An outer (group-coupling Jacobi) iteration is starting.
    fn on_outer_start(&mut self, outer: usize) {
        let _ = outer;
    }

    /// An outer iteration finished; `converged` reports whether the inner
    /// solve met the problem's tolerance within this outer.
    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        let _ = (outer, converged);
    }

    /// An inner iterate completed with the given maximum relative
    /// scalar-flux change (one event per entry of
    /// [`SolveOutcome::convergence_history`]).
    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        let _ = (inner, relative_change);
    }

    /// A full transport sweep completed.  `sweep` is the running sweep
    /// count (1-based), `cells` the kernel invocations it performed
    /// (elements × groups × angles — deterministic), and `seconds` the
    /// wall-clock time of this sweep.
    fn on_sweep(&mut self, sweep: usize, cells: u64, seconds: f64) {
        let _ = (sweep, cells, seconds);
    }

    /// One wavefront bucket of the current sweep completed: `angle` is
    /// the sweep direction, `bucket` the bucket's position in that
    /// angle's dependency order and `tasks` the local assemble/solve
    /// tasks it contained (cells × groups).  The payload is entirely
    /// deterministic — no seconds ride on this event, so emitting it
    /// costs the solver no clock reads; tracing layers timestamp it on
    /// arrival.  Fires between the enclosing sweep's
    /// [`RunObserver::on_phase_start`]/[`RunObserver::on_phase_end`]
    /// pair, in `(angle, bucket)` order at every thread count.
    fn on_sweep_bucket(&mut self, angle: usize, bucket: usize, tasks: u64) {
        let _ = (angle, bucket, tasks);
    }

    /// A Krylov iteration reported a relative residual (one event per
    /// entry of [`SolveOutcome::krylov_residual_history`]; never fires
    /// under plain source iteration).
    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        let _ = (iteration, relative_residual);
    }

    /// The low-order DSA correction solve reported a CG residual (one
    /// event per entry of
    /// [`SolveOutcome::accel_residual_history`](crate::solver::SolveOutcome::accel_residual_history);
    /// only fires when DSA is active — the `DSA-SI` strategy or the
    /// DSA-preconditioned GMRES path).
    fn on_accel_residual(&mut self, iteration: usize, relative_residual: f64) {
        let _ = (iteration, relative_residual);
    }

    /// A timed phase span opened (see [`Phase`] for the taxonomy).
    /// Spans never nest within one phase; the matching
    /// [`RunObserver::on_phase_end`] carries the measured duration.
    fn on_phase_start(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// A timed phase span closed after `seconds` of wall-clock time (as
    /// measured by the solver's [`Clock`](unsnap_obs::clock::Clock) —
    /// exact under a mock clock).
    fn on_phase_end(&mut self, phase: Phase, seconds: f64) {
        let _ = (phase, seconds);
    }

    /// The distributed driver published the previous iterate's angular
    /// flux to its subdomains: `iteration` is the 0-based halo
    /// iteration, `faces` the cut faces crossed and `bytes` the payload
    /// moved.  Fired by the driver itself (outside any rank), so both
    /// [`EventLog::replay`] and [`EventLog::replay_as_rank`] deliver it
    /// through this untagged hook.  Single-domain solves never fire it.
    fn on_halo_exchange(&mut self, iteration: usize, faces: usize, bytes: u64) {
        let _ = (iteration, faces, bytes);
    }

    // ------------------------------------------------------------------
    // Rank-tagged events, fired by distributed drivers (the block-Jacobi
    // multi-rank path in `unsnap-comm`).  Ranks solve concurrently, so
    // drivers buffer each rank's stream in an [`EventLog`] and replay the
    // logs in rank order once the parallel region ends — the streams a
    // single observer sees are therefore bit-for-bit identical at every
    // thread count.  Single-domain solves never fire these.
    // ------------------------------------------------------------------

    /// Rank `rank` started its inner solve for one distributed (halo)
    /// iteration; `outer` is the global halo-iteration index.
    fn on_rank_outer_start(&mut self, rank: usize, outer: usize) {
        let _ = (rank, outer);
    }

    /// Rank `rank` finished its inner solve; `converged` reports whether
    /// the rank's *local* solve met the tolerance (global convergence is
    /// still reported through [`RunObserver::on_inner_iteration`]).
    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        let _ = (rank, outer, converged);
    }

    /// Rank-local inner iterate: the rank's maximum relative scalar-flux
    /// change over its own subdomain.
    fn on_rank_inner_iteration(&mut self, rank: usize, inner: usize, relative_change: f64) {
        let _ = (rank, inner, relative_change);
    }

    /// Rank `rank` completed a subdomain sweep (`sweep` is that rank's
    /// running count, `cells` its kernel invocations).
    fn on_rank_sweep(&mut self, rank: usize, sweep: usize, cells: u64, seconds: f64) {
        let _ = (rank, sweep, cells, seconds);
    }

    /// Rank `rank` completed one wavefront bucket of its masked
    /// subdomain sweep (see [`RunObserver::on_sweep_bucket`] for the
    /// payload semantics; the stream is deterministic because rank logs
    /// replay in rank order).
    fn on_rank_sweep_bucket(&mut self, rank: usize, angle: usize, bucket: usize, tasks: u64) {
        let _ = (rank, angle, bucket, tasks);
    }

    /// Rank `rank`'s subdomain Krylov solve reported a relative residual.
    fn on_rank_krylov_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        let _ = (rank, iteration, relative_residual);
    }

    /// Rank `rank`'s low-order DSA correction solve reported a CG
    /// residual.
    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        let _ = (rank, iteration, relative_residual);
    }

    /// Rank `rank` opened a timed phase span.
    fn on_rank_phase_start(&mut self, rank: usize, phase: Phase) {
        let _ = (rank, phase);
    }

    /// Rank `rank` closed a timed phase span after `seconds`.
    fn on_rank_phase_end(&mut self, rank: usize, phase: Phase, seconds: f64) {
        let _ = (rank, phase, seconds);
    }
}

/// One buffered solve event (the payload of an [`EventLog`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SolveEvent {
    /// [`RunObserver::on_outer_start`].
    OuterStart {
        /// Outer-iteration index.
        outer: usize,
    },
    /// [`RunObserver::on_outer_end`].
    OuterEnd {
        /// Outer-iteration index.
        outer: usize,
        /// Whether the inner solve met the tolerance.
        converged: bool,
    },
    /// [`RunObserver::on_inner_iteration`].
    InnerIteration {
        /// Inner-iteration count.
        inner: usize,
        /// Maximum relative scalar-flux change.
        relative_change: f64,
    },
    /// [`RunObserver::on_sweep`].
    Sweep {
        /// Running sweep count.
        sweep: usize,
        /// Kernel invocations performed (elements × groups × angles).
        cells: u64,
        /// Wall-clock seconds of this sweep.
        seconds: f64,
    },
    /// [`RunObserver::on_sweep_bucket`].
    SweepBucket {
        /// Sweep direction (angle index).
        angle: usize,
        /// Bucket position in the angle's dependency order.
        bucket: usize,
        /// Assemble/solve tasks the bucket contained (cells × groups).
        tasks: u64,
    },
    /// [`RunObserver::on_krylov_residual`].
    KrylovResidual {
        /// Krylov iterations completed.
        iteration: usize,
        /// Relative residual estimate.
        relative_residual: f64,
    },
    /// [`RunObserver::on_accel_residual`].
    AccelResidual {
        /// Low-order CG iterations completed within the current solve.
        iteration: usize,
        /// Relative CG residual.
        relative_residual: f64,
    },
    /// [`RunObserver::on_phase_start`].
    PhaseStart {
        /// The phase being entered.
        phase: Phase,
    },
    /// [`RunObserver::on_phase_end`].
    PhaseEnd {
        /// The phase being left.
        phase: Phase,
        /// Wall-clock seconds the span measured.
        seconds: f64,
    },
    /// [`RunObserver::on_halo_exchange`].  A driver-level event: both
    /// replay directions deliver it untagged.
    HaloExchange {
        /// 0-based halo iteration.
        iteration: usize,
        /// Cut faces crossed by the exchange.
        faces: usize,
        /// Bytes of angular flux published.
        bytes: u64,
    },
    /// A rank-tagged event captured through one of the `on_rank_*`
    /// hooks.  Recording the tag in the log (rather than dropping it,
    /// as the pre-durability `EventLog` did) lets a single log buffer a
    /// distributed driver's *full* stream — untagged driver events plus
    /// every rank's tagged sub-stream — so a checkpoint prefix can be
    /// replayed verbatim into a fresh observer on resume.
    Rank {
        /// The rank that emitted the wrapped event.
        rank: usize,
        /// The wrapped event (never itself a `Rank` or `HaloExchange`).
        event: Box<SolveEvent>,
    },
}

/// An observer that buffers the event stream verbatim.
///
/// Distributed drivers hand one `EventLog` to each concurrently-solving
/// rank, then call [`EventLog::replay_as_rank`] in rank order after the
/// parallel region: the destination observer receives every rank's
/// stream through the rank-tagged [`RunObserver`] hooks in a
/// deterministic order regardless of how the ranks interleaved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    /// The buffered events, in emission order.
    pub events: Vec<SolveEvent>,
}

impl EventLog {
    /// Drop all buffered events so the log can record another solve.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Deliver one event through the rank-tagged hooks as rank `rank`.
    fn deliver_tagged(rank: usize, event: &SolveEvent, observer: &mut dyn RunObserver) {
        match *event {
            SolveEvent::OuterStart { outer } => observer.on_rank_outer_start(rank, outer),
            SolveEvent::OuterEnd { outer, converged } => {
                observer.on_rank_outer_end(rank, outer, converged)
            }
            SolveEvent::InnerIteration {
                inner,
                relative_change,
            } => observer.on_rank_inner_iteration(rank, inner, relative_change),
            SolveEvent::Sweep {
                sweep,
                cells,
                seconds,
            } => observer.on_rank_sweep(rank, sweep, cells, seconds),
            SolveEvent::SweepBucket {
                angle,
                bucket,
                tasks,
            } => observer.on_rank_sweep_bucket(rank, angle, bucket, tasks),
            SolveEvent::KrylovResidual {
                iteration,
                relative_residual,
            } => observer.on_rank_krylov_residual(rank, iteration, relative_residual),
            SolveEvent::AccelResidual {
                iteration,
                relative_residual,
            } => observer.on_rank_accel_residual(rank, iteration, relative_residual),
            SolveEvent::PhaseStart { phase } => observer.on_rank_phase_start(rank, phase),
            SolveEvent::PhaseEnd { phase, seconds } => {
                observer.on_rank_phase_end(rank, phase, seconds)
            }
            // Halo exchanges are driver-level events (never recorded
            // inside a rank's log); if one is replayed here it still
            // belongs to the run, not the rank.
            SolveEvent::HaloExchange {
                iteration,
                faces,
                bytes,
            } => observer.on_halo_exchange(iteration, faces, bytes),
            // An already-tagged event keeps its recorded rank — the
            // outer tag never re-labels it.
            SolveEvent::Rank {
                rank: inner_rank,
                ref event,
            } => Self::deliver_tagged(inner_rank, event, observer),
        }
    }

    /// Replay the buffered stream into `observer` through the untagged
    /// hooks, in emission order.  [`SolveEvent::Rank`]-wrapped events go
    /// through the rank-tagged hooks with their recorded rank, so a full
    /// distributed stream round-trips through a single log.
    pub fn replay(&self, observer: &mut dyn RunObserver) {
        for event in &self.events {
            match *event {
                SolveEvent::OuterStart { outer } => observer.on_outer_start(outer),
                SolveEvent::OuterEnd { outer, converged } => {
                    observer.on_outer_end(outer, converged)
                }
                SolveEvent::InnerIteration {
                    inner,
                    relative_change,
                } => observer.on_inner_iteration(inner, relative_change),
                SolveEvent::Sweep {
                    sweep,
                    cells,
                    seconds,
                } => observer.on_sweep(sweep, cells, seconds),
                SolveEvent::SweepBucket {
                    angle,
                    bucket,
                    tasks,
                } => observer.on_sweep_bucket(angle, bucket, tasks),
                SolveEvent::KrylovResidual {
                    iteration,
                    relative_residual,
                } => observer.on_krylov_residual(iteration, relative_residual),
                SolveEvent::AccelResidual {
                    iteration,
                    relative_residual,
                } => observer.on_accel_residual(iteration, relative_residual),
                SolveEvent::PhaseStart { phase } => observer.on_phase_start(phase),
                SolveEvent::PhaseEnd { phase, seconds } => observer.on_phase_end(phase, seconds),
                SolveEvent::HaloExchange {
                    iteration,
                    faces,
                    bytes,
                } => observer.on_halo_exchange(iteration, faces, bytes),
                SolveEvent::Rank { rank, ref event } => Self::deliver_tagged(rank, event, observer),
            }
        }
    }

    /// Replay the buffered stream into `observer` through the
    /// rank-tagged hooks, tagging every event with `rank`.  Events that
    /// already carry a [`SolveEvent::Rank`] tag keep their recorded rank.
    pub fn replay_as_rank(&self, rank: usize, observer: &mut dyn RunObserver) {
        for event in &self.events {
            Self::deliver_tagged(rank, event, observer);
        }
    }
}

impl RunObserver for EventLog {
    fn on_outer_start(&mut self, outer: usize) {
        self.events.push(SolveEvent::OuterStart { outer });
    }

    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        self.events.push(SolveEvent::OuterEnd { outer, converged });
    }

    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        self.events.push(SolveEvent::InnerIteration {
            inner,
            relative_change,
        });
    }

    fn on_sweep(&mut self, sweep: usize, cells: u64, seconds: f64) {
        self.events.push(SolveEvent::Sweep {
            sweep,
            cells,
            seconds,
        });
    }

    fn on_sweep_bucket(&mut self, angle: usize, bucket: usize, tasks: u64) {
        self.events.push(SolveEvent::SweepBucket {
            angle,
            bucket,
            tasks,
        });
    }

    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.events.push(SolveEvent::KrylovResidual {
            iteration,
            relative_residual,
        });
    }

    fn on_accel_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.events.push(SolveEvent::AccelResidual {
            iteration,
            relative_residual,
        });
    }

    fn on_phase_start(&mut self, phase: Phase) {
        self.events.push(SolveEvent::PhaseStart { phase });
    }

    fn on_phase_end(&mut self, phase: Phase, seconds: f64) {
        self.events.push(SolveEvent::PhaseEnd { phase, seconds });
    }

    fn on_halo_exchange(&mut self, iteration: usize, faces: usize, bytes: u64) {
        self.events.push(SolveEvent::HaloExchange {
            iteration,
            faces,
            bytes,
        });
    }

    fn on_rank_outer_start(&mut self, rank: usize, outer: usize) {
        self.events.push(SolveEvent::Rank {
            rank,
            event: Box::new(SolveEvent::OuterStart { outer }),
        });
    }

    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        self.events.push(SolveEvent::Rank {
            rank,
            event: Box::new(SolveEvent::OuterEnd { outer, converged }),
        });
    }

    fn on_rank_inner_iteration(&mut self, rank: usize, inner: usize, relative_change: f64) {
        self.events.push(SolveEvent::Rank {
            rank,
            event: Box::new(SolveEvent::InnerIteration {
                inner,
                relative_change,
            }),
        });
    }

    fn on_rank_sweep(&mut self, rank: usize, sweep: usize, cells: u64, seconds: f64) {
        self.events.push(SolveEvent::Rank {
            rank,
            event: Box::new(SolveEvent::Sweep {
                sweep,
                cells,
                seconds,
            }),
        });
    }

    fn on_rank_sweep_bucket(&mut self, rank: usize, angle: usize, bucket: usize, tasks: u64) {
        self.events.push(SolveEvent::Rank {
            rank,
            event: Box::new(SolveEvent::SweepBucket {
                angle,
                bucket,
                tasks,
            }),
        });
    }

    fn on_rank_krylov_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.events.push(SolveEvent::Rank {
            rank,
            event: Box::new(SolveEvent::KrylovResidual {
                iteration,
                relative_residual,
            }),
        });
    }

    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.events.push(SolveEvent::Rank {
            rank,
            event: Box::new(SolveEvent::AccelResidual {
                iteration,
                relative_residual,
            }),
        });
    }

    fn on_rank_phase_start(&mut self, rank: usize, phase: Phase) {
        self.events.push(SolveEvent::Rank {
            rank,
            event: Box::new(SolveEvent::PhaseStart { phase }),
        });
    }

    fn on_rank_phase_end(&mut self, rank: usize, phase: Phase, seconds: f64) {
        self.events.push(SolveEvent::Rank {
            rank,
            event: Box::new(SolveEvent::PhaseEnd { phase, seconds }),
        });
    }
}

/// The silent observer used when nobody is watching.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {}

/// An observer that records the event stream and reconstructs the history
/// vectors of a [`SolveOutcome`].
///
/// After a run, [`RecordingObserver::convergence_history`] and
/// [`RecordingObserver::krylov_residual_history`] equal the outcome's
/// fields element-for-element, and [`RecordingObserver::sweep_count`]
/// equals [`SolveOutcome::sweep_count`] — streaming loses nothing relative
/// to the post-hoc summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingObserver {
    /// Outer iterations started.
    pub outers_started: usize,
    /// Outer iterations completed.
    pub outers_completed: usize,
    /// Inner iterations observed (entries of `convergence_history`).
    pub convergence_history: Vec<f64>,
    /// Krylov residuals observed, concatenated across outer iterations.
    pub krylov_residual_history: Vec<f64>,
    /// Low-order DSA CG residuals observed, concatenated across
    /// correction solves (empty unless DSA is active).
    pub accel_residual_history: Vec<f64>,
    /// Transport sweeps observed.
    pub sweep_count: usize,
    /// Wavefront buckets observed across all sweeps (deterministic).
    pub sweep_buckets: usize,
    /// Assemble/solve tasks summed over the observed buckets
    /// (deterministic; equals `cells_swept` when bucket events fire).
    pub bucket_tasks: u64,
    /// Kernel invocations summed over the observed sweeps
    /// (deterministic, unlike the seconds).
    pub cells_swept: u64,
    /// Wall-clock seconds summed over the observed sweeps.
    pub sweep_seconds: f64,
    /// Phase spans opened, per [`Phase::index`] slot (grown on demand;
    /// deterministic).
    pub phase_starts: Vec<usize>,
    /// Wall-clock seconds summed per [`Phase::index`] slot (grown on
    /// demand; zero these before cross-run comparisons).
    pub phase_seconds: Vec<f64>,
    /// Halo exchanges observed (distributed solves only).
    pub halo_exchanges: usize,
    /// Cut faces summed over the observed halo exchanges.
    pub halo_faces: usize,
    /// Bytes summed over the observed halo exchanges.
    pub halo_bytes: u64,
    /// Whether any outer iteration reported inner convergence.
    pub converged: bool,
    /// Per-rank recordings built from the rank-tagged hooks (empty for
    /// single-domain solves).  Entry `r` records rank `r`'s stream with
    /// the same field semantics as the top-level recorder.
    pub rank_records: Vec<RecordingObserver>,
}

impl RecordingObserver {
    /// Reset the recording so the observer can watch another run.
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// The recording of one rank's stream, if any events arrived for it.
    pub fn rank(&self, rank: usize) -> Option<&RecordingObserver> {
        self.rank_records.get(rank)
    }

    /// Mutable per-rank recording, growing the table on demand.
    fn rank_mut(&mut self, rank: usize) -> &mut RecordingObserver {
        if self.rank_records.len() <= rank {
            self.rank_records
                .resize_with(rank + 1, RecordingObserver::default);
        }
        &mut self.rank_records[rank]
    }
}

impl RunObserver for RecordingObserver {
    fn on_outer_start(&mut self, _outer: usize) {
        self.outers_started += 1;
    }

    fn on_outer_end(&mut self, _outer: usize, converged: bool) {
        self.outers_completed += 1;
        self.converged |= converged;
    }

    fn on_inner_iteration(&mut self, _inner: usize, relative_change: f64) {
        self.convergence_history.push(relative_change);
    }

    fn on_sweep(&mut self, sweep: usize, cells: u64, seconds: f64) {
        self.sweep_count = sweep;
        self.cells_swept += cells;
        self.sweep_seconds += seconds;
    }

    fn on_sweep_bucket(&mut self, _angle: usize, _bucket: usize, tasks: u64) {
        self.sweep_buckets += 1;
        self.bucket_tasks += tasks;
    }

    fn on_krylov_residual(&mut self, _iteration: usize, relative_residual: f64) {
        self.krylov_residual_history.push(relative_residual);
    }

    fn on_accel_residual(&mut self, _iteration: usize, relative_residual: f64) {
        self.accel_residual_history.push(relative_residual);
    }

    fn on_phase_start(&mut self, phase: Phase) {
        let slot = phase.index();
        if self.phase_starts.len() <= slot {
            self.phase_starts.resize(slot + 1, 0);
        }
        self.phase_starts[slot] += 1;
    }

    fn on_phase_end(&mut self, phase: Phase, seconds: f64) {
        let slot = phase.index();
        if self.phase_seconds.len() <= slot {
            self.phase_seconds.resize(slot + 1, 0.0);
        }
        self.phase_seconds[slot] += seconds;
    }

    fn on_halo_exchange(&mut self, _iteration: usize, faces: usize, bytes: u64) {
        self.halo_exchanges += 1;
        self.halo_faces += faces;
        self.halo_bytes += bytes;
    }

    fn on_rank_outer_start(&mut self, rank: usize, outer: usize) {
        self.rank_mut(rank).on_outer_start(outer);
    }

    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        self.rank_mut(rank).on_outer_end(outer, converged);
    }

    fn on_rank_inner_iteration(&mut self, rank: usize, inner: usize, relative_change: f64) {
        self.rank_mut(rank)
            .on_inner_iteration(inner, relative_change);
    }

    fn on_rank_sweep(&mut self, rank: usize, sweep: usize, cells: u64, seconds: f64) {
        self.rank_mut(rank).on_sweep(sweep, cells, seconds);
    }

    fn on_rank_sweep_bucket(&mut self, rank: usize, angle: usize, bucket: usize, tasks: u64) {
        self.rank_mut(rank).on_sweep_bucket(angle, bucket, tasks);
    }

    fn on_rank_krylov_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.rank_mut(rank)
            .on_krylov_residual(iteration, relative_residual);
    }

    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.rank_mut(rank)
            .on_accel_residual(iteration, relative_residual);
    }

    fn on_rank_phase_start(&mut self, rank: usize, phase: Phase) {
        self.rank_mut(rank).on_phase_start(phase);
    }

    fn on_rank_phase_end(&mut self, rank: usize, phase: Phase, seconds: f64) {
        self.rank_mut(rank).on_phase_end(phase, seconds);
    }
}

/// An observer that forwards every event to two underlying observers,
/// first `primary`, then `secondary`.
///
/// This is how the solvers attach metrics without disturbing the
/// caller's observer: `run_observed` tees the caller's observer with an
/// internal [`MetricsObserver`](crate::metrics::MetricsObserver), so
/// every outcome carries a [`RunMetrics`](crate::metrics::RunMetrics)
/// snapshot for free.
pub struct TeeObserver<'a> {
    primary: &'a mut dyn RunObserver,
    secondary: &'a mut dyn RunObserver,
}

impl<'a> TeeObserver<'a> {
    /// Tee `primary` (receives each event first) with `secondary`.
    pub fn new(primary: &'a mut dyn RunObserver, secondary: &'a mut dyn RunObserver) -> Self {
        Self { primary, secondary }
    }
}

impl RunObserver for TeeObserver<'_> {
    fn on_outer_start(&mut self, outer: usize) {
        self.primary.on_outer_start(outer);
        self.secondary.on_outer_start(outer);
    }

    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        self.primary.on_outer_end(outer, converged);
        self.secondary.on_outer_end(outer, converged);
    }

    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        self.primary.on_inner_iteration(inner, relative_change);
        self.secondary.on_inner_iteration(inner, relative_change);
    }

    fn on_sweep(&mut self, sweep: usize, cells: u64, seconds: f64) {
        self.primary.on_sweep(sweep, cells, seconds);
        self.secondary.on_sweep(sweep, cells, seconds);
    }

    fn on_sweep_bucket(&mut self, angle: usize, bucket: usize, tasks: u64) {
        self.primary.on_sweep_bucket(angle, bucket, tasks);
        self.secondary.on_sweep_bucket(angle, bucket, tasks);
    }

    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.primary
            .on_krylov_residual(iteration, relative_residual);
        self.secondary
            .on_krylov_residual(iteration, relative_residual);
    }

    fn on_accel_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.primary.on_accel_residual(iteration, relative_residual);
        self.secondary
            .on_accel_residual(iteration, relative_residual);
    }

    fn on_phase_start(&mut self, phase: Phase) {
        self.primary.on_phase_start(phase);
        self.secondary.on_phase_start(phase);
    }

    fn on_phase_end(&mut self, phase: Phase, seconds: f64) {
        self.primary.on_phase_end(phase, seconds);
        self.secondary.on_phase_end(phase, seconds);
    }

    fn on_halo_exchange(&mut self, iteration: usize, faces: usize, bytes: u64) {
        self.primary.on_halo_exchange(iteration, faces, bytes);
        self.secondary.on_halo_exchange(iteration, faces, bytes);
    }

    fn on_rank_outer_start(&mut self, rank: usize, outer: usize) {
        self.primary.on_rank_outer_start(rank, outer);
        self.secondary.on_rank_outer_start(rank, outer);
    }

    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        self.primary.on_rank_outer_end(rank, outer, converged);
        self.secondary.on_rank_outer_end(rank, outer, converged);
    }

    fn on_rank_inner_iteration(&mut self, rank: usize, inner: usize, relative_change: f64) {
        self.primary
            .on_rank_inner_iteration(rank, inner, relative_change);
        self.secondary
            .on_rank_inner_iteration(rank, inner, relative_change);
    }

    fn on_rank_sweep(&mut self, rank: usize, sweep: usize, cells: u64, seconds: f64) {
        self.primary.on_rank_sweep(rank, sweep, cells, seconds);
        self.secondary.on_rank_sweep(rank, sweep, cells, seconds);
    }

    fn on_rank_sweep_bucket(&mut self, rank: usize, angle: usize, bucket: usize, tasks: u64) {
        self.primary
            .on_rank_sweep_bucket(rank, angle, bucket, tasks);
        self.secondary
            .on_rank_sweep_bucket(rank, angle, bucket, tasks);
    }

    fn on_rank_krylov_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.primary
            .on_rank_krylov_residual(rank, iteration, relative_residual);
        self.secondary
            .on_rank_krylov_residual(rank, iteration, relative_residual);
    }

    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.primary
            .on_rank_accel_residual(rank, iteration, relative_residual);
        self.secondary
            .on_rank_accel_residual(rank, iteration, relative_residual);
    }

    fn on_rank_phase_start(&mut self, rank: usize, phase: Phase) {
        self.primary.on_rank_phase_start(rank, phase);
        self.secondary.on_rank_phase_start(rank, phase);
    }

    fn on_rank_phase_end(&mut self, rank: usize, phase: Phase, seconds: f64) {
        self.primary.on_rank_phase_end(rank, phase, seconds);
        self.secondary.on_rank_phase_end(rank, phase, seconds);
    }
}

/// A rate-limited stderr progress reporter for long-running solves.
///
/// Outer-iteration boundaries always print; the high-rate events (inner
/// iterates, Krylov and DSA residuals, rank-tagged updates) print at
/// most once per `min_interval`, so a bench binary can stream useful
/// progress without drowning in per-sweep output.  The rate limiter
/// never swallows convergence: a converged outer always flushes a final
/// summary line carrying the sweep count and the last residuals seen.
/// Wire it up behind the bench harness's `--progress` flag:
///
/// ```
/// use unsnap_core::builder::ProblemBuilder;
/// use unsnap_core::session::ProgressObserver;
///
/// let mut session = ProblemBuilder::tiny().session().unwrap();
/// let mut progress = ProgressObserver::new();
/// session.run_observed(&mut progress).unwrap();
/// assert!(progress.lines_emitted() >= 2); // outer start + end
/// ```
///
/// Timing is wall-clock, so the *set* of rate-limited lines differs
/// between runs; the observer only writes to stderr and never feeds
/// back into the solve, which keeps the solver's determinism contract
/// intact.
///
/// ## Bar mode
///
/// When stderr is an interactive terminal, [`ProgressObserver::from_env`]
/// switches to a single in-place status bar (rewritten with `\r` at the
/// same rate limit) instead of scrolling lines; piped stderr — CI logs,
/// `2> file` — keeps the line mode so logs stay greppable.  The
/// [`ProgressObserver::bar`] builder forces bar mode explicitly, and
/// [`ProgressObserver::with_outer_total`] turns the bar into a real
/// completion fraction over the outer iterations.
#[derive(Debug)]
pub struct ProgressObserver {
    min_interval: std::time::Duration,
    last_emit: Option<std::time::Instant>,
    lines_emitted: usize,
    sweeps: usize,
    last_inner_change: Option<f64>,
    last_krylov_residual: Option<f64>,
    last_accel_residual: Option<f64>,
    bar: bool,
    outer_current: usize,
    outer_total: Option<usize>,
    last_render_width: usize,
    needs_newline: bool,
}

impl Default for ProgressObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressObserver {
    /// The env knob selecting the rate-limit interval in milliseconds
    /// (validated by `ProblemBuilder::env_overrides`, consumed by
    /// [`ProgressObserver::from_env`]).
    pub const INTERVAL_ENV: &'static str = "UNSNAP_PROGRESS_MS";

    /// A reporter with the default 100 ms rate limit.
    pub fn new() -> Self {
        Self::with_interval(std::time::Duration::from_millis(100))
    }

    /// A reporter whose rate limit honours `UNSNAP_PROGRESS_MS`
    /// (milliseconds; `0` = print every event).  An unset variable means
    /// the default 100 ms; an unparsable value falls back to the default
    /// with a note on stderr, so a driver never dies over a progress
    /// knob (the builder's `env_overrides` is the strict validator).
    ///
    /// When stderr is an interactive terminal the reporter comes back in
    /// bar mode (see the type docs); redirected stderr keeps the
    /// greppable line mode.
    pub fn from_env() -> Self {
        use std::io::IsTerminal;
        let progress = Self::from_env_value(std::env::var(Self::INTERVAL_ENV).ok().as_deref());
        if std::io::stderr().is_terminal() {
            progress.bar()
        } else {
            progress
        }
    }

    /// [`ProgressObserver::from_env`] with the variable's value passed
    /// explicitly (`None` = unset), so the policy is testable without
    /// mutating the process environment.
    fn from_env_value(raw: Option<&str>) -> Self {
        match raw {
            None => Self::new(),
            Some(raw) => match raw.trim().parse::<u64>() {
                Ok(ms) => Self::with_interval(std::time::Duration::from_millis(ms)),
                Err(_) => {
                    eprintln!(
                        "[unsnap] ignoring unparsable {}={raw:?}; using the default interval",
                        Self::INTERVAL_ENV
                    );
                    Self::new()
                }
            },
        }
    }

    /// A reporter emitting rate-limited lines at most once per
    /// `min_interval` (zero = every event).
    pub fn with_interval(min_interval: std::time::Duration) -> Self {
        Self {
            min_interval,
            last_emit: None,
            lines_emitted: 0,
            sweeps: 0,
            last_inner_change: None,
            last_krylov_residual: None,
            last_accel_residual: None,
            bar: false,
            outer_current: 0,
            outer_total: None,
            last_render_width: 0,
            needs_newline: false,
        }
    }

    /// Switch to the single in-place status bar (see the type docs).
    pub fn bar(mut self) -> Self {
        self.bar = true;
        self
    }

    /// Tell the bar how many outer iterations the run will attempt, so
    /// it can draw a real completion fraction instead of a counter.
    pub fn with_outer_total(mut self, total: usize) -> Self {
        self.outer_total = Some(total);
        self
    }

    /// Whether the reporter is in bar mode.
    pub fn is_bar(&self) -> bool {
        self.bar
    }

    /// Lines written to stderr so far (bar mode: in-place re-renders).
    pub fn lines_emitted(&self) -> usize {
        self.lines_emitted
    }

    /// Terminate an in-place bar with a newline so the next writer gets
    /// a clean line.  Harmless (a no-op) in line mode or when nothing
    /// was rendered; called automatically on convergence and on drop.
    pub fn finish(&mut self) {
        if self.needs_newline {
            eprintln!();
            self.needs_newline = false;
        }
    }

    /// Render the single status bar in place (`\r`, padded to wipe the
    /// previous render).
    fn render_bar(&mut self) {
        use std::io::Write;

        let mut line = String::from("[unsnap] ");
        if let Some(total) = self.outer_total.filter(|t| *t > 0) {
            const WIDTH: usize = 20;
            let done = self.outer_current.min(total);
            let filled = WIDTH * done / total;
            line.push('[');
            for i in 0..WIDTH {
                line.push(if i < filled { '#' } else { '-' });
            }
            line.push_str(&format!("] outer {done}/{total}"));
        } else {
            line.push_str(&format!("outer {}", self.outer_current));
        }
        line.push_str(&format!(" | {} sweeps", self.sweeps));
        if let Some(change) = self.last_inner_change {
            line.push_str(&format!(" | d-phi {change:.3e}"));
        }
        if let Some(residual) = self.last_krylov_residual {
            line.push_str(&format!(" | krylov {residual:.3e}"));
        }
        if let Some(residual) = self.last_accel_residual {
            line.push_str(&format!(" | dsa cg {residual:.3e}"));
        }
        let width = line.chars().count();
        let pad = self.last_render_width.saturating_sub(width);
        eprint!("\r{line}{:pad$}", "");
        let _ = std::io::stderr().flush();
        self.last_render_width = width;
        self.needs_newline = true;
        self.lines_emitted += 1;
        self.last_emit = Some(std::time::Instant::now());
    }

    /// Print unconditionally (outer boundaries).
    fn emit(&mut self, line: std::fmt::Arguments<'_>) {
        if self.bar {
            self.render_bar();
            return;
        }
        eprintln!("{line}");
        self.lines_emitted += 1;
        self.last_emit = Some(std::time::Instant::now());
    }

    /// Print only if the rate limit allows it.
    fn emit_limited(&mut self, line: std::fmt::Arguments<'_>) {
        let due = match self.last_emit {
            None => true,
            Some(t) => t.elapsed() >= self.min_interval,
        };
        if due {
            self.emit(line);
        }
    }
}

impl Drop for ProgressObserver {
    fn drop(&mut self) {
        self.finish();
    }
}

impl RunObserver for ProgressObserver {
    fn on_outer_start(&mut self, outer: usize) {
        self.outer_current = outer;
        self.emit(format_args!("[unsnap] outer {outer} started"));
    }

    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        self.outer_current = outer + 1;
        if self.bar {
            self.render_bar();
            if converged {
                self.finish();
            }
            return;
        }
        let state = if converged {
            "converged"
        } else {
            "not converged"
        };
        let sweeps = self.sweeps;
        self.emit(format_args!(
            "[unsnap] outer {outer} finished ({state}, {sweeps} sweeps so far)"
        ));
        if converged {
            // Final summary: never rate-limited, so convergence and the
            // residuals it was declared at are always visible even when
            // every intermediate line was swallowed by the limiter.
            let mut summary = format!("[unsnap] converged after {sweeps} sweeps");
            if let Some(change) = self.last_inner_change {
                summary.push_str(&format!(", last Δφ {change:.3e}"));
            }
            if let Some(residual) = self.last_krylov_residual {
                summary.push_str(&format!(", last krylov residual {residual:.3e}"));
            }
            if let Some(residual) = self.last_accel_residual {
                summary.push_str(&format!(", last dsa cg residual {residual:.3e}"));
            }
            self.emit(format_args!("{summary}"));
        }
    }

    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        self.last_inner_change = Some(relative_change);
        self.emit_limited(format_args!(
            "[unsnap]   inner {inner}: max relative change {relative_change:.3e}"
        ));
    }

    fn on_sweep(&mut self, sweep: usize, _cells: u64, _seconds: f64) {
        self.sweeps = sweep;
    }

    fn on_rank_sweep(&mut self, _rank: usize, _sweep: usize, _cells: u64, _seconds: f64) {
        // Distributed drivers report sweeps per rank (each with its own
        // running count); count events so the outer-boundary summary
        // reflects the total across ranks.
        self.sweeps += 1;
    }

    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.last_krylov_residual = Some(relative_residual);
        self.emit_limited(format_args!(
            "[unsnap]   krylov {iteration}: residual {relative_residual:.3e}"
        ));
    }

    fn on_accel_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.last_accel_residual = Some(relative_residual);
        self.emit_limited(format_args!(
            "[unsnap]   dsa cg {iteration}: residual {relative_residual:.3e}"
        ));
    }

    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        let state = if converged { "converged" } else { "running" };
        self.emit_limited(format_args!(
            "[unsnap]   rank {rank} halo iteration {outer}: {state}"
        ));
    }

    fn on_rank_inner_iteration(&mut self, rank: usize, inner: usize, relative_change: f64) {
        self.last_inner_change = Some(relative_change);
        self.emit_limited(format_args!(
            "[unsnap]   rank {rank} inner {inner}: max relative change {relative_change:.3e}"
        ));
    }

    fn on_rank_krylov_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.last_krylov_residual = Some(relative_residual);
        self.emit_limited(format_args!(
            "[unsnap]   rank {rank} krylov {iteration}: residual {relative_residual:.3e}"
        ));
    }

    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.last_accel_residual = Some(relative_residual);
        self.emit_limited(format_args!(
            "[unsnap]   rank {rank} dsa cg {iteration}: residual {relative_residual:.3e}"
        ));
    }
}

/// An owned, observable transport solve.
///
/// A `Session` wraps a [`TransportSolver`] and keeps the outcome of every
/// run, so drivers hold a single object across repeated (warm-started)
/// solves.  Running the same session twice continues from the flux state
/// the previous run left behind — the behaviour a restart/continuation
/// driver wants; build a fresh session for an independent solve.
pub struct Session {
    solver: TransportSolver,
    outcomes: Vec<SolveOutcome>,
}

impl Session {
    /// Build a session for a validated problem.
    pub fn new(problem: &Problem) -> Result<Self> {
        Ok(Self {
            solver: TransportSolver::new(problem)?,
            outcomes: Vec::new(),
        })
    }

    /// The problem this session solves.
    pub fn problem(&self) -> &Problem {
        self.solver.problem()
    }

    /// The underlying solver (schedules, quadrature, flux state).
    pub fn solver(&self) -> &TransportSolver {
        &self.solver
    }

    /// Mutable access to the underlying solver for advanced drivers.
    pub fn solver_mut(&mut self) -> &mut TransportSolver {
        &mut self.solver
    }

    /// Run the full outer/inner iteration structure silently.
    pub fn run(&mut self) -> Result<SolveOutcome> {
        self.run_observed(&mut NoopObserver)
    }

    /// Run the full outer/inner iteration structure, streaming events to
    /// `observer` as they happen.
    pub fn run_observed(&mut self, observer: &mut dyn RunObserver) -> Result<SolveOutcome> {
        let outcome = self.solver.run_observed(observer)?;
        self.outcomes.push(outcome.clone());
        Ok(outcome)
    }

    /// [`Session::run_observed`] with a durability hook: `sink` is
    /// offered a checkpoint of the solver state at every outer-iteration
    /// boundary (see
    /// [`TransportSolver::run_observed_checkpointed`](crate::solver::TransportSolver::run_observed_checkpointed)).
    pub fn run_checkpointed(
        &mut self,
        observer: &mut dyn RunObserver,
        sink: &mut dyn crate::solver::CheckpointSink,
    ) -> Result<SolveOutcome> {
        let outcome = self.solver.run_observed_checkpointed(observer, sink)?;
        self.outcomes.push(outcome.clone());
        Ok(outcome)
    }

    /// The outcome of the most recent run, if any.
    pub fn last_outcome(&self) -> Option<&SolveOutcome> {
        self.outcomes.last()
    }

    /// The outcomes of every run of this session, in order.
    pub fn outcomes(&self) -> &[SolveOutcome] {
        &self.outcomes
    }

    /// The scalar flux after the most recent run.
    pub fn scalar_flux(&self) -> &FluxStorage {
        self.solver.scalar_flux()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;

    #[test]
    fn session_runs_and_keeps_outcomes() {
        let mut session = Session::new(&Problem::tiny()).unwrap();
        assert!(session.last_outcome().is_none());
        let outcome = session.run().unwrap();
        assert!(outcome.scalar_flux_total > 0.0);
        assert_eq!(session.outcomes().len(), 1);
        assert_eq!(session.last_outcome(), Some(&outcome));
        assert_eq!(session.problem(), &Problem::tiny());
    }

    #[test]
    fn recording_observer_matches_outcome_for_source_iteration() {
        let mut session = Session::new(&Problem::tiny()).unwrap();
        let mut recorder = RecordingObserver::default();
        let outcome = session.run_observed(&mut recorder).unwrap();
        assert_eq!(recorder.sweep_count, outcome.sweep_count);
        assert_eq!(recorder.convergence_history, outcome.convergence_history);
        assert_eq!(
            recorder.krylov_residual_history,
            outcome.krylov_residual_history
        );
        assert_eq!(recorder.outers_started, outcome.outer_iterations);
        assert_eq!(recorder.outers_completed, outcome.outer_iterations);
        assert_eq!(recorder.converged, outcome.converged);
    }

    #[test]
    fn recording_observer_matches_outcome_for_sweep_gmres() {
        let problem = Problem::tiny().with_strategy(StrategyKind::SweepGmres);
        let mut session = Session::new(&problem).unwrap();
        let mut recorder = RecordingObserver::default();
        let outcome = session.run_observed(&mut recorder).unwrap();
        assert!(!recorder.krylov_residual_history.is_empty());
        assert_eq!(recorder.sweep_count, outcome.sweep_count);
        assert_eq!(recorder.convergence_history, outcome.convergence_history);
        assert_eq!(
            recorder.krylov_residual_history,
            outcome.krylov_residual_history
        );
    }

    #[test]
    fn rerunning_a_session_warm_starts() {
        let mut p = Problem::tiny();
        p.convergence_tolerance = 1e-12;
        p.inner_iterations = 4;
        let mut session = Session::new(&p).unwrap();
        let first = session.run().unwrap();
        let second = session.run().unwrap();
        // The second run starts from the first run's flux, so its first
        // iterate moves far less.
        assert!(second.convergence_history[0] < first.convergence_history[0]);
        assert_eq!(session.outcomes().len(), 2);
    }

    #[test]
    fn event_log_buffers_and_replays_both_ways() {
        let problem = Problem::tiny().with_strategy(StrategyKind::SweepGmres);

        // Record directly and via an EventLog replay: identical.
        let mut direct = RecordingObserver::default();
        Session::new(&problem)
            .unwrap()
            .run_observed(&mut direct)
            .unwrap();

        let mut log = EventLog::default();
        Session::new(&problem)
            .unwrap()
            .run_observed(&mut log)
            .unwrap();
        assert!(!log.events.is_empty());

        let mut replayed = RecordingObserver::default();
        log.replay(&mut replayed);
        // Wall-clock timing (sweep seconds, phase seconds) legitimately
        // differs between the two runs; every other recorded quantity —
        // including the deterministic phase-start counts — must match
        // exactly.
        fn zero_timing(r: &mut RecordingObserver) {
            r.sweep_seconds = 0.0;
            for s in &mut r.phase_seconds {
                *s = 0.0;
            }
        }
        zero_timing(&mut direct);
        let mut normalised = replayed.clone();
        zero_timing(&mut normalised);
        assert_eq!(direct, normalised);
        assert!(
            normalised.phase_starts.iter().sum::<usize>() > 0,
            "a GMRES run must open phase spans"
        );

        // Rank-tagged replay lands the same stream in a rank record.
        let mut tagged = RecordingObserver::default();
        log.replay_as_rank(2, &mut tagged);
        assert_eq!(tagged.rank_records.len(), 3);
        assert_eq!(tagged.rank(2), Some(&replayed));
        assert_eq!(tagged.rank(0), Some(&RecordingObserver::default()));
        assert_eq!(tagged.rank(3), None);
        // Untagged fields stay untouched by rank-tagged events.
        assert_eq!(tagged.sweep_count, 0);
        assert!(tagged.convergence_history.is_empty());

        let mut cleared = log.clone();
        cleared.clear();
        assert!(cleared.events.is_empty());
    }

    #[test]
    fn progress_observer_rate_limits_high_rate_events() {
        // A huge interval: only the unconditional outer boundary prints.
        let mut p = ProgressObserver::with_interval(std::time::Duration::from_secs(3600));
        p.on_outer_start(0);
        p.on_inner_iteration(1, 0.5);
        p.on_krylov_residual(1, 0.1);
        p.on_accel_residual(0, 1.0);
        p.on_sweep(3, 10, 0.01);
        assert_eq!(p.lines_emitted(), 1);
        // A converged outer always flushes the boundary line plus the
        // final summary, no matter how recently the limiter fired.
        p.on_outer_end(0, true);
        assert_eq!(p.lines_emitted(), 3);

        // An unconverged outer prints the boundary line only.
        let mut p = ProgressObserver::with_interval(std::time::Duration::from_secs(3600));
        p.on_outer_start(0);
        p.on_outer_end(0, false);
        assert_eq!(p.lines_emitted(), 2);

        // Zero interval: every rate-limited event prints too, including
        // the per-rank residual and inner-iterate streams.
        let mut p = ProgressObserver::with_interval(std::time::Duration::ZERO);
        p.on_inner_iteration(1, 0.5);
        p.on_krylov_residual(1, 0.1);
        p.on_accel_residual(0, 1.0);
        p.on_rank_outer_end(2, 0, false);
        p.on_rank_inner_iteration(2, 1, 0.25);
        p.on_rank_krylov_residual(2, 1, 0.05);
        p.on_rank_accel_residual(2, 0, 0.5);
        assert_eq!(p.lines_emitted(), 7);
    }

    #[test]
    fn progress_observer_from_env_honours_and_survives_the_knob() {
        // The policy is tested through the explicit-value constructor so
        // no process-global environment is touched (the builder's env
        // test owns the real variable).
        let p = ProgressObserver::from_env_value(Some("0"));
        assert_eq!(p.min_interval, std::time::Duration::ZERO);

        let p = ProgressObserver::from_env_value(Some(" 250 "));
        assert_eq!(p.min_interval, std::time::Duration::from_millis(250));

        // Unset means the default; garbage falls back to the default
        // with a note instead of panicking.
        let default = ProgressObserver::new().min_interval;
        assert_eq!(ProgressObserver::from_env_value(None).min_interval, default);
        assert_eq!(
            ProgressObserver::from_env_value(Some("soon")).min_interval,
            default
        );
    }

    #[test]
    fn progress_observer_bar_mode_renders_in_place() {
        // Bar mode counts in-place re-renders through the same counter;
        // boundaries always render, high-rate events respect the limiter.
        let mut p = ProgressObserver::with_interval(std::time::Duration::from_secs(3600))
            .bar()
            .with_outer_total(4);
        assert!(p.is_bar());
        p.on_outer_start(0);
        p.on_inner_iteration(1, 0.5);
        p.on_krylov_residual(1, 0.1);
        assert_eq!(p.lines_emitted(), 1);
        // An unconverged outer re-renders the bar without a summary.
        p.on_outer_end(0, false);
        assert_eq!(p.lines_emitted(), 2);
        // Convergence renders once more and terminates the bar line.
        p.on_outer_end(1, true);
        assert_eq!(p.lines_emitted(), 3);
        assert!(!p.needs_newline);
        p.finish(); // idempotent after convergence
        assert!(!p.needs_newline);

        // Constructors default to line mode (CI logs stay greppable).
        assert!(!ProgressObserver::new().is_bar());
        assert!(!ProgressObserver::from_env_value(Some("0")).is_bar());
    }

    #[test]
    fn progress_observer_bar_drives_a_real_solve() {
        let mut session = crate::builder::ProblemBuilder::tiny().session().unwrap();
        let mut progress = ProgressObserver::with_interval(std::time::Duration::ZERO)
            .bar()
            .with_outer_total(1);
        session.run_observed(&mut progress).unwrap();
        assert!(progress.lines_emitted() >= 2);
        progress.finish();
        assert!(!progress.needs_newline);
    }

    #[test]
    fn phase_events_buffer_and_replay_both_ways() {
        let mut log = EventLog::default();
        log.on_phase_start(Phase::Sweep);
        log.on_phase_end(Phase::Sweep, 0.25);
        log.on_phase_start(Phase::Krylov);
        log.on_phase_end(Phase::Krylov, 0.5);
        log.on_halo_exchange(0, 16, 1024);
        assert_eq!(log.events.len(), 5);

        let mut direct = RecordingObserver::default();
        log.replay(&mut direct);
        assert_eq!(direct.phase_starts[Phase::Sweep.index()], 1);
        assert_eq!(direct.phase_seconds[Phase::Krylov.index()], 0.5);
        assert_eq!(direct.halo_exchanges, 1);
        assert_eq!(direct.halo_faces, 16);
        assert_eq!(direct.halo_bytes, 1024);

        // Rank-tagged replay: phase events land in the rank record, the
        // halo exchange stays a driver-level (untagged) event.
        let mut tagged = RecordingObserver::default();
        log.replay_as_rank(1, &mut tagged);
        let rank = tagged.rank(1).unwrap();
        assert_eq!(rank.phase_starts[Phase::Sweep.index()], 1);
        assert_eq!(rank.phase_seconds[Phase::Sweep.index()], 0.25);
        assert_eq!(rank.halo_exchanges, 0);
        assert!(tagged.phase_starts.is_empty());
        assert_eq!(tagged.halo_exchanges, 1);
        assert_eq!(tagged.halo_bytes, 1024);
    }

    #[test]
    fn tee_observer_forwards_every_event_to_both() {
        let mut log = EventLog::default();
        log.on_outer_start(0);
        log.on_sweep(1, 32, 0.1);
        log.on_phase_start(Phase::Sweep);
        log.on_phase_end(Phase::Sweep, 0.1);
        log.on_inner_iteration(1, 0.5);
        log.on_krylov_residual(1, 0.1);
        log.on_accel_residual(0, 1.0);
        log.on_halo_exchange(0, 4, 64);
        log.on_outer_end(0, true);

        let mut a = RecordingObserver::default();
        let mut b = RecordingObserver::default();
        {
            let mut tee = TeeObserver::new(&mut a, &mut b);
            log.replay(&mut tee);
            log.replay_as_rank(0, &mut tee);
        }
        assert_eq!(a, b);
        assert_eq!(a.sweep_count, 1);
        assert_eq!(a.cells_swept, 32);
        assert_eq!(a.rank_records.len(), 1);
        assert_eq!(a.rank_records[0].cells_swept, 32);
    }

    #[test]
    fn accel_residual_events_buffer_and_replay_both_ways() {
        let mut log = EventLog::default();
        log.on_accel_residual(0, 1.0);
        log.on_accel_residual(1, 0.25);
        assert_eq!(log.events.len(), 2);

        let mut direct = RecordingObserver::default();
        log.replay(&mut direct);
        assert_eq!(direct.accel_residual_history, vec![1.0, 0.25]);

        let mut tagged = RecordingObserver::default();
        log.replay_as_rank(1, &mut tagged);
        assert!(tagged.accel_residual_history.is_empty());
        assert_eq!(
            tagged.rank(1).unwrap().accel_residual_history,
            vec![1.0, 0.25]
        );
    }

    #[test]
    fn sweep_bucket_events_buffer_and_replay_both_ways() {
        let mut log = EventLog::default();
        log.on_sweep_bucket(0, 0, 100);
        log.on_sweep_bucket(0, 1, 44);
        log.on_sweep_bucket(1, 0, 100);
        assert_eq!(log.events.len(), 3);

        let mut direct = RecordingObserver::default();
        log.replay(&mut direct);
        assert_eq!(direct.sweep_buckets, 3);
        assert_eq!(direct.bucket_tasks, 244);

        let mut tagged = RecordingObserver::default();
        log.replay_as_rank(2, &mut tagged);
        assert_eq!(tagged.sweep_buckets, 0);
        assert_eq!(tagged.rank(2).unwrap().sweep_buckets, 3);
        assert_eq!(tagged.rank(2).unwrap().bucket_tasks, 244);
    }

    #[test]
    fn recorder_clear_resets() {
        let mut r = RecordingObserver {
            sweep_count: 3,
            ..Default::default()
        };
        r.clear();
        assert_eq!(r, RecordingObserver::default());
    }
}
