//! The observable solve session: [`Session`], [`RunObserver`] and the
//! built-in observers.
//!
//! The seed's `TransportSolver::run()` was a black box: it emitted nothing
//! until it returned a finished [`SolveOutcome`], so drivers that wanted
//! per-iteration residuals (ablation harnesses, progress displays, the
//! planned distributed drivers) had to parse the outcome's history vectors
//! after the fact.  This module splits that monolith:
//!
//! * [`RunObserver`] is the streaming interface — a trait with no-op
//!   defaults whose hooks fire at every outer iteration boundary, every
//!   inner iteration, every transport sweep and every Krylov residual;
//! * [`Session`] owns the solver state across runs and drives it under an
//!   observer, so callers hold one object instead of a `Problem` plus a
//!   `TransportSolver` plus an outcome;
//! * [`RecordingObserver`] records the stream and reconstructs exactly the
//!   history vectors a [`SolveOutcome`] reports — the equivalence the
//!   integration tests pin down bit-for-bit.
//!
//! ```
//! use unsnap_core::builder::ProblemBuilder;
//! use unsnap_core::session::{RecordingObserver, Session};
//!
//! let mut session = Session::new(&ProblemBuilder::tiny().build().unwrap()).unwrap();
//! let mut recorder = RecordingObserver::default();
//! let outcome = session.run_observed(&mut recorder).unwrap();
//! assert_eq!(recorder.sweep_count, outcome.sweep_count);
//! assert_eq!(recorder.convergence_history, outcome.convergence_history);
//! ```

use crate::error::Result;
use crate::layout::FluxStorage;
use crate::problem::Problem;
use crate::solver::{SolveOutcome, TransportSolver};

/// Streaming hooks into a running transport solve.
///
/// Every method has a no-op default, so observers implement only the
/// events they care about.  Hooks are called synchronously from the solver
/// thread between numerical steps; heavy work in a hook slows the solve
/// but cannot corrupt it.
pub trait RunObserver {
    /// An outer (group-coupling Jacobi) iteration is starting.
    fn on_outer_start(&mut self, outer: usize) {
        let _ = outer;
    }

    /// An outer iteration finished; `converged` reports whether the inner
    /// solve met the problem's tolerance within this outer.
    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        let _ = (outer, converged);
    }

    /// An inner iterate completed with the given maximum relative
    /// scalar-flux change (one event per entry of
    /// [`SolveOutcome::convergence_history`]).
    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        let _ = (inner, relative_change);
    }

    /// A full transport sweep completed.  `sweep` is the running sweep
    /// count (1-based) and `seconds` the wall-clock time of this sweep.
    fn on_sweep(&mut self, sweep: usize, seconds: f64) {
        let _ = (sweep, seconds);
    }

    /// A Krylov iteration reported a relative residual (one event per
    /// entry of [`SolveOutcome::krylov_residual_history`]; never fires
    /// under plain source iteration).
    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        let _ = (iteration, relative_residual);
    }

    /// The low-order DSA correction solve reported a CG residual (one
    /// event per entry of
    /// [`SolveOutcome::accel_residual_history`](crate::solver::SolveOutcome::accel_residual_history);
    /// only fires when DSA is active — the `DSA-SI` strategy or the
    /// DSA-preconditioned GMRES path).
    fn on_accel_residual(&mut self, iteration: usize, relative_residual: f64) {
        let _ = (iteration, relative_residual);
    }

    // ------------------------------------------------------------------
    // Rank-tagged events, fired by distributed drivers (the block-Jacobi
    // multi-rank path in `unsnap-comm`).  Ranks solve concurrently, so
    // drivers buffer each rank's stream in an [`EventLog`] and replay the
    // logs in rank order once the parallel region ends — the streams a
    // single observer sees are therefore bit-for-bit identical at every
    // thread count.  Single-domain solves never fire these.
    // ------------------------------------------------------------------

    /// Rank `rank` started its inner solve for one distributed (halo)
    /// iteration; `outer` is the global halo-iteration index.
    fn on_rank_outer_start(&mut self, rank: usize, outer: usize) {
        let _ = (rank, outer);
    }

    /// Rank `rank` finished its inner solve; `converged` reports whether
    /// the rank's *local* solve met the tolerance (global convergence is
    /// still reported through [`RunObserver::on_inner_iteration`]).
    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        let _ = (rank, outer, converged);
    }

    /// Rank-local inner iterate: the rank's maximum relative scalar-flux
    /// change over its own subdomain.
    fn on_rank_inner_iteration(&mut self, rank: usize, inner: usize, relative_change: f64) {
        let _ = (rank, inner, relative_change);
    }

    /// Rank `rank` completed a subdomain sweep (`sweep` is that rank's
    /// running count).
    fn on_rank_sweep(&mut self, rank: usize, sweep: usize, seconds: f64) {
        let _ = (rank, sweep, seconds);
    }

    /// Rank `rank`'s subdomain Krylov solve reported a relative residual.
    fn on_rank_krylov_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        let _ = (rank, iteration, relative_residual);
    }

    /// Rank `rank`'s low-order DSA correction solve reported a CG
    /// residual.
    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        let _ = (rank, iteration, relative_residual);
    }
}

/// One buffered solve event (the payload of an [`EventLog`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SolveEvent {
    /// [`RunObserver::on_outer_start`].
    OuterStart {
        /// Outer-iteration index.
        outer: usize,
    },
    /// [`RunObserver::on_outer_end`].
    OuterEnd {
        /// Outer-iteration index.
        outer: usize,
        /// Whether the inner solve met the tolerance.
        converged: bool,
    },
    /// [`RunObserver::on_inner_iteration`].
    InnerIteration {
        /// Inner-iteration count.
        inner: usize,
        /// Maximum relative scalar-flux change.
        relative_change: f64,
    },
    /// [`RunObserver::on_sweep`].
    Sweep {
        /// Running sweep count.
        sweep: usize,
        /// Wall-clock seconds of this sweep.
        seconds: f64,
    },
    /// [`RunObserver::on_krylov_residual`].
    KrylovResidual {
        /// Krylov iterations completed.
        iteration: usize,
        /// Relative residual estimate.
        relative_residual: f64,
    },
    /// [`RunObserver::on_accel_residual`].
    AccelResidual {
        /// Low-order CG iterations completed within the current solve.
        iteration: usize,
        /// Relative CG residual.
        relative_residual: f64,
    },
}

/// An observer that buffers the event stream verbatim.
///
/// Distributed drivers hand one `EventLog` to each concurrently-solving
/// rank, then call [`EventLog::replay_as_rank`] in rank order after the
/// parallel region: the destination observer receives every rank's
/// stream through the rank-tagged [`RunObserver`] hooks in a
/// deterministic order regardless of how the ranks interleaved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    /// The buffered events, in emission order.
    pub events: Vec<SolveEvent>,
}

impl EventLog {
    /// Drop all buffered events so the log can record another solve.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Replay the buffered stream into `observer` through the untagged
    /// hooks, in emission order.
    pub fn replay(&self, observer: &mut dyn RunObserver) {
        for event in &self.events {
            match *event {
                SolveEvent::OuterStart { outer } => observer.on_outer_start(outer),
                SolveEvent::OuterEnd { outer, converged } => {
                    observer.on_outer_end(outer, converged)
                }
                SolveEvent::InnerIteration {
                    inner,
                    relative_change,
                } => observer.on_inner_iteration(inner, relative_change),
                SolveEvent::Sweep { sweep, seconds } => observer.on_sweep(sweep, seconds),
                SolveEvent::KrylovResidual {
                    iteration,
                    relative_residual,
                } => observer.on_krylov_residual(iteration, relative_residual),
                SolveEvent::AccelResidual {
                    iteration,
                    relative_residual,
                } => observer.on_accel_residual(iteration, relative_residual),
            }
        }
    }

    /// Replay the buffered stream into `observer` through the
    /// rank-tagged hooks, tagging every event with `rank`.
    pub fn replay_as_rank(&self, rank: usize, observer: &mut dyn RunObserver) {
        for event in &self.events {
            match *event {
                SolveEvent::OuterStart { outer } => observer.on_rank_outer_start(rank, outer),
                SolveEvent::OuterEnd { outer, converged } => {
                    observer.on_rank_outer_end(rank, outer, converged)
                }
                SolveEvent::InnerIteration {
                    inner,
                    relative_change,
                } => observer.on_rank_inner_iteration(rank, inner, relative_change),
                SolveEvent::Sweep { sweep, seconds } => {
                    observer.on_rank_sweep(rank, sweep, seconds)
                }
                SolveEvent::KrylovResidual {
                    iteration,
                    relative_residual,
                } => observer.on_rank_krylov_residual(rank, iteration, relative_residual),
                SolveEvent::AccelResidual {
                    iteration,
                    relative_residual,
                } => observer.on_rank_accel_residual(rank, iteration, relative_residual),
            }
        }
    }
}

impl RunObserver for EventLog {
    fn on_outer_start(&mut self, outer: usize) {
        self.events.push(SolveEvent::OuterStart { outer });
    }

    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        self.events.push(SolveEvent::OuterEnd { outer, converged });
    }

    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        self.events.push(SolveEvent::InnerIteration {
            inner,
            relative_change,
        });
    }

    fn on_sweep(&mut self, sweep: usize, seconds: f64) {
        self.events.push(SolveEvent::Sweep { sweep, seconds });
    }

    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.events.push(SolveEvent::KrylovResidual {
            iteration,
            relative_residual,
        });
    }

    fn on_accel_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.events.push(SolveEvent::AccelResidual {
            iteration,
            relative_residual,
        });
    }
}

/// The silent observer used when nobody is watching.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {}

/// An observer that records the event stream and reconstructs the history
/// vectors of a [`SolveOutcome`].
///
/// After a run, [`RecordingObserver::convergence_history`] and
/// [`RecordingObserver::krylov_residual_history`] equal the outcome's
/// fields element-for-element, and [`RecordingObserver::sweep_count`]
/// equals [`SolveOutcome::sweep_count`] — streaming loses nothing relative
/// to the post-hoc summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordingObserver {
    /// Outer iterations started.
    pub outers_started: usize,
    /// Outer iterations completed.
    pub outers_completed: usize,
    /// Inner iterations observed (entries of `convergence_history`).
    pub convergence_history: Vec<f64>,
    /// Krylov residuals observed, concatenated across outer iterations.
    pub krylov_residual_history: Vec<f64>,
    /// Low-order DSA CG residuals observed, concatenated across
    /// correction solves (empty unless DSA is active).
    pub accel_residual_history: Vec<f64>,
    /// Transport sweeps observed.
    pub sweep_count: usize,
    /// Wall-clock seconds summed over the observed sweeps.
    pub sweep_seconds: f64,
    /// Whether any outer iteration reported inner convergence.
    pub converged: bool,
    /// Per-rank recordings built from the rank-tagged hooks (empty for
    /// single-domain solves).  Entry `r` records rank `r`'s stream with
    /// the same field semantics as the top-level recorder.
    pub rank_records: Vec<RecordingObserver>,
}

impl RecordingObserver {
    /// Reset the recording so the observer can watch another run.
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// The recording of one rank's stream, if any events arrived for it.
    pub fn rank(&self, rank: usize) -> Option<&RecordingObserver> {
        self.rank_records.get(rank)
    }

    /// Mutable per-rank recording, growing the table on demand.
    fn rank_mut(&mut self, rank: usize) -> &mut RecordingObserver {
        if self.rank_records.len() <= rank {
            self.rank_records
                .resize_with(rank + 1, RecordingObserver::default);
        }
        &mut self.rank_records[rank]
    }
}

impl RunObserver for RecordingObserver {
    fn on_outer_start(&mut self, _outer: usize) {
        self.outers_started += 1;
    }

    fn on_outer_end(&mut self, _outer: usize, converged: bool) {
        self.outers_completed += 1;
        self.converged |= converged;
    }

    fn on_inner_iteration(&mut self, _inner: usize, relative_change: f64) {
        self.convergence_history.push(relative_change);
    }

    fn on_sweep(&mut self, sweep: usize, seconds: f64) {
        self.sweep_count = sweep;
        self.sweep_seconds += seconds;
    }

    fn on_krylov_residual(&mut self, _iteration: usize, relative_residual: f64) {
        self.krylov_residual_history.push(relative_residual);
    }

    fn on_accel_residual(&mut self, _iteration: usize, relative_residual: f64) {
        self.accel_residual_history.push(relative_residual);
    }

    fn on_rank_outer_start(&mut self, rank: usize, outer: usize) {
        self.rank_mut(rank).on_outer_start(outer);
    }

    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        self.rank_mut(rank).on_outer_end(outer, converged);
    }

    fn on_rank_inner_iteration(&mut self, rank: usize, inner: usize, relative_change: f64) {
        self.rank_mut(rank)
            .on_inner_iteration(inner, relative_change);
    }

    fn on_rank_sweep(&mut self, rank: usize, sweep: usize, seconds: f64) {
        self.rank_mut(rank).on_sweep(sweep, seconds);
    }

    fn on_rank_krylov_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.rank_mut(rank)
            .on_krylov_residual(iteration, relative_residual);
    }

    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.rank_mut(rank)
            .on_accel_residual(iteration, relative_residual);
    }
}

/// A rate-limited stderr progress reporter for long-running solves.
///
/// Outer-iteration boundaries always print; the high-rate events (inner
/// iterates, Krylov and DSA residuals) print at most once per
/// `min_interval`, so a bench binary can stream useful progress without
/// drowning in per-sweep output.  Wire it up behind the bench harness's
/// `--progress` flag:
///
/// ```
/// use unsnap_core::builder::ProblemBuilder;
/// use unsnap_core::session::ProgressObserver;
///
/// let mut session = ProblemBuilder::tiny().session().unwrap();
/// let mut progress = ProgressObserver::new();
/// session.run_observed(&mut progress).unwrap();
/// assert!(progress.lines_emitted() >= 2); // outer start + end
/// ```
///
/// Timing is wall-clock, so the *set* of rate-limited lines differs
/// between runs; the observer only writes to stderr and never feeds
/// back into the solve, which keeps the solver's determinism contract
/// intact.
#[derive(Debug)]
pub struct ProgressObserver {
    min_interval: std::time::Duration,
    last_emit: Option<std::time::Instant>,
    lines_emitted: usize,
    sweeps: usize,
}

impl Default for ProgressObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressObserver {
    /// A reporter with the default 100 ms rate limit.
    pub fn new() -> Self {
        Self::with_interval(std::time::Duration::from_millis(100))
    }

    /// A reporter emitting rate-limited lines at most once per
    /// `min_interval` (zero = every event).
    pub fn with_interval(min_interval: std::time::Duration) -> Self {
        Self {
            min_interval,
            last_emit: None,
            lines_emitted: 0,
            sweeps: 0,
        }
    }

    /// Lines written to stderr so far.
    pub fn lines_emitted(&self) -> usize {
        self.lines_emitted
    }

    /// Print unconditionally (outer boundaries).
    fn emit(&mut self, line: std::fmt::Arguments<'_>) {
        eprintln!("{line}");
        self.lines_emitted += 1;
        self.last_emit = Some(std::time::Instant::now());
    }

    /// Print only if the rate limit allows it.
    fn emit_limited(&mut self, line: std::fmt::Arguments<'_>) {
        let due = match self.last_emit {
            None => true,
            Some(t) => t.elapsed() >= self.min_interval,
        };
        if due {
            self.emit(line);
        }
    }
}

impl RunObserver for ProgressObserver {
    fn on_outer_start(&mut self, outer: usize) {
        self.emit(format_args!("[unsnap] outer {outer} started"));
    }

    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        let state = if converged {
            "converged"
        } else {
            "not converged"
        };
        let sweeps = self.sweeps;
        self.emit(format_args!(
            "[unsnap] outer {outer} finished ({state}, {sweeps} sweeps so far)"
        ));
    }

    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        self.emit_limited(format_args!(
            "[unsnap]   inner {inner}: max relative change {relative_change:.3e}"
        ));
    }

    fn on_sweep(&mut self, sweep: usize, _seconds: f64) {
        self.sweeps = sweep;
    }

    fn on_rank_sweep(&mut self, _rank: usize, _sweep: usize, _seconds: f64) {
        // Distributed drivers report sweeps per rank (each with its own
        // running count); count events so the outer-boundary summary
        // reflects the total across ranks.
        self.sweeps += 1;
    }

    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.emit_limited(format_args!(
            "[unsnap]   krylov {iteration}: residual {relative_residual:.3e}"
        ));
    }

    fn on_accel_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.emit_limited(format_args!(
            "[unsnap]   dsa cg {iteration}: residual {relative_residual:.3e}"
        ));
    }

    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        let state = if converged { "converged" } else { "running" };
        self.emit_limited(format_args!(
            "[unsnap]   rank {rank} halo iteration {outer}: {state}"
        ));
    }
}

/// An owned, observable transport solve.
///
/// A `Session` wraps a [`TransportSolver`] and keeps the outcome of every
/// run, so drivers hold a single object across repeated (warm-started)
/// solves.  Running the same session twice continues from the flux state
/// the previous run left behind — the behaviour a restart/continuation
/// driver wants; build a fresh session for an independent solve.
pub struct Session {
    solver: TransportSolver,
    outcomes: Vec<SolveOutcome>,
}

impl Session {
    /// Build a session for a validated problem.
    pub fn new(problem: &Problem) -> Result<Self> {
        Ok(Self {
            solver: TransportSolver::new(problem)?,
            outcomes: Vec::new(),
        })
    }

    /// The problem this session solves.
    pub fn problem(&self) -> &Problem {
        self.solver.problem()
    }

    /// The underlying solver (schedules, quadrature, flux state).
    pub fn solver(&self) -> &TransportSolver {
        &self.solver
    }

    /// Mutable access to the underlying solver for advanced drivers.
    pub fn solver_mut(&mut self) -> &mut TransportSolver {
        &mut self.solver
    }

    /// Run the full outer/inner iteration structure silently.
    pub fn run(&mut self) -> Result<SolveOutcome> {
        self.run_observed(&mut NoopObserver)
    }

    /// Run the full outer/inner iteration structure, streaming events to
    /// `observer` as they happen.
    pub fn run_observed(&mut self, observer: &mut dyn RunObserver) -> Result<SolveOutcome> {
        let outcome = self.solver.run_observed(observer)?;
        self.outcomes.push(outcome.clone());
        Ok(outcome)
    }

    /// The outcome of the most recent run, if any.
    pub fn last_outcome(&self) -> Option<&SolveOutcome> {
        self.outcomes.last()
    }

    /// The outcomes of every run of this session, in order.
    pub fn outcomes(&self) -> &[SolveOutcome] {
        &self.outcomes
    }

    /// The scalar flux after the most recent run.
    pub fn scalar_flux(&self) -> &FluxStorage {
        self.solver.scalar_flux()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;

    #[test]
    fn session_runs_and_keeps_outcomes() {
        let mut session = Session::new(&Problem::tiny()).unwrap();
        assert!(session.last_outcome().is_none());
        let outcome = session.run().unwrap();
        assert!(outcome.scalar_flux_total > 0.0);
        assert_eq!(session.outcomes().len(), 1);
        assert_eq!(session.last_outcome(), Some(&outcome));
        assert_eq!(session.problem(), &Problem::tiny());
    }

    #[test]
    fn recording_observer_matches_outcome_for_source_iteration() {
        let mut session = Session::new(&Problem::tiny()).unwrap();
        let mut recorder = RecordingObserver::default();
        let outcome = session.run_observed(&mut recorder).unwrap();
        assert_eq!(recorder.sweep_count, outcome.sweep_count);
        assert_eq!(recorder.convergence_history, outcome.convergence_history);
        assert_eq!(
            recorder.krylov_residual_history,
            outcome.krylov_residual_history
        );
        assert_eq!(recorder.outers_started, outcome.outer_iterations);
        assert_eq!(recorder.outers_completed, outcome.outer_iterations);
        assert_eq!(recorder.converged, outcome.converged);
    }

    #[test]
    fn recording_observer_matches_outcome_for_sweep_gmres() {
        let problem = Problem::tiny().with_strategy(StrategyKind::SweepGmres);
        let mut session = Session::new(&problem).unwrap();
        let mut recorder = RecordingObserver::default();
        let outcome = session.run_observed(&mut recorder).unwrap();
        assert!(!recorder.krylov_residual_history.is_empty());
        assert_eq!(recorder.sweep_count, outcome.sweep_count);
        assert_eq!(recorder.convergence_history, outcome.convergence_history);
        assert_eq!(
            recorder.krylov_residual_history,
            outcome.krylov_residual_history
        );
    }

    #[test]
    fn rerunning_a_session_warm_starts() {
        let mut p = Problem::tiny();
        p.convergence_tolerance = 1e-12;
        p.inner_iterations = 4;
        let mut session = Session::new(&p).unwrap();
        let first = session.run().unwrap();
        let second = session.run().unwrap();
        // The second run starts from the first run's flux, so its first
        // iterate moves far less.
        assert!(second.convergence_history[0] < first.convergence_history[0]);
        assert_eq!(session.outcomes().len(), 2);
    }

    #[test]
    fn event_log_buffers_and_replays_both_ways() {
        let problem = Problem::tiny().with_strategy(StrategyKind::SweepGmres);

        // Record directly and via an EventLog replay: identical.
        let mut direct = RecordingObserver::default();
        Session::new(&problem)
            .unwrap()
            .run_observed(&mut direct)
            .unwrap();

        let mut log = EventLog::default();
        Session::new(&problem)
            .unwrap()
            .run_observed(&mut log)
            .unwrap();
        assert!(!log.events.is_empty());

        let mut replayed = RecordingObserver::default();
        log.replay(&mut replayed);
        // Wall-clock sweep timing legitimately differs between the two
        // runs; every other recorded quantity must match exactly.
        direct.sweep_seconds = 0.0;
        let mut normalised = replayed.clone();
        normalised.sweep_seconds = 0.0;
        assert_eq!(direct, normalised);

        // Rank-tagged replay lands the same stream in a rank record.
        let mut tagged = RecordingObserver::default();
        log.replay_as_rank(2, &mut tagged);
        assert_eq!(tagged.rank_records.len(), 3);
        assert_eq!(tagged.rank(2), Some(&replayed));
        assert_eq!(tagged.rank(0), Some(&RecordingObserver::default()));
        assert_eq!(tagged.rank(3), None);
        // Untagged fields stay untouched by rank-tagged events.
        assert_eq!(tagged.sweep_count, 0);
        assert!(tagged.convergence_history.is_empty());

        let mut cleared = log.clone();
        cleared.clear();
        assert!(cleared.events.is_empty());
    }

    #[test]
    fn progress_observer_rate_limits_high_rate_events() {
        // A huge interval: only the unconditional outer boundary prints.
        let mut p = ProgressObserver::with_interval(std::time::Duration::from_secs(3600));
        p.on_outer_start(0);
        p.on_inner_iteration(1, 0.5);
        p.on_krylov_residual(1, 0.1);
        p.on_accel_residual(0, 1.0);
        p.on_sweep(3, 0.01);
        assert_eq!(p.lines_emitted(), 1);
        p.on_outer_end(0, true);
        assert_eq!(p.lines_emitted(), 2);

        // Zero interval: every rate-limited event prints too.
        let mut p = ProgressObserver::with_interval(std::time::Duration::ZERO);
        p.on_inner_iteration(1, 0.5);
        p.on_krylov_residual(1, 0.1);
        p.on_accel_residual(0, 1.0);
        p.on_rank_outer_end(2, 0, false);
        assert_eq!(p.lines_emitted(), 4);
    }

    #[test]
    fn accel_residual_events_buffer_and_replay_both_ways() {
        let mut log = EventLog::default();
        log.on_accel_residual(0, 1.0);
        log.on_accel_residual(1, 0.25);
        assert_eq!(log.events.len(), 2);

        let mut direct = RecordingObserver::default();
        log.replay(&mut direct);
        assert_eq!(direct.accel_residual_history, vec![1.0, 0.25]);

        let mut tagged = RecordingObserver::default();
        log.replay_as_rank(1, &mut tagged);
        assert!(tagged.accel_residual_history.is_empty());
        assert_eq!(
            tagged.rank(1).unwrap().accel_residual_history,
            vec![1.0, 0.25]
        );
    }

    #[test]
    fn recorder_clear_resets() {
        let mut r = RecordingObserver {
            sweep_count: 3,
            ..Default::default()
        };
        r.clear();
        assert_eq!(r, RecordingObserver::default());
    }
}
