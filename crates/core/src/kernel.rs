//! The assemble/solve kernel: one local DG system per
//! element × angle × energy group.
//!
//! This is the computation at the heart of the sweep (Figure 2 of the
//! paper):
//!
//! * **Assemble `A`** from the Sn direction, the total cross section and
//!   the precomputed basis-pair integrals:
//!
//!   `A = −Σ_d Ω_d G[d] + σ_t M + Σ_{outflow faces} ∫ φ_i φ_j (Ω·n) dS`
//!
//!   where `G[d]` are the streaming matrices and `M` the mass matrix.
//!
//! * **Assemble `b`** from the source and the upwind neighbour flux:
//!
//!   `b_i = Σ_j M_ij q_j − Σ_{inflow faces} Σ_j ∫ φ_i φ_j (Ω·n) dS ψ^up_j`
//!
//!   (the inflow integrand is negative, so the upwind term adds particles).
//!
//! * **Solve `A ψ = b`** with the selected dense solver (hand-written
//!   Gaussian elimination, reference LU, or the blocked-LU MKL stand-in).
//!
//! The kernel is written so that the hot loops run over contiguous slices
//! (matrix rows, node vectors) and reuses caller-provided scratch storage —
//! no allocation happens per invocation once the scratch is warm.

use std::time::Instant;

use unsnap_fem::integrals::ElementIntegrals;
use unsnap_linalg::{DenseMatrix, LinearSolver};

/// Where the upwind flux for one inflow face comes from.
#[derive(Debug, Clone, Copy)]
pub enum UpwindSource<'a> {
    /// The face lies on the domain boundary: a single prescribed incoming
    /// angular-flux value.
    Boundary(f64),
    /// The face is interior: the neighbour's node-contiguous angular-flux
    /// slice for the same angle and group, together with the neighbour's
    /// face-local node indices (so entry `m` of the face pairs with
    /// `neighbor_psi[neighbor_face_nodes[m]]`).
    Interior {
        /// Neighbour element's angular-flux nodes (all of them).
        neighbor_psi: &'a [f64],
        /// The neighbour's element-local node indices on the shared face,
        /// in the canonical face order.
        neighbor_face_nodes: &'a [usize],
    },
}

/// One inflow-face description handed to the kernel.
#[derive(Debug, Clone, Copy)]
pub struct UpwindFace<'a> {
    /// Face index (0..6) of the element being solved.
    pub face: usize,
    /// Where the upwind flux comes from.
    pub source: UpwindSource<'a>,
}

/// Reusable scratch space for the kernel (one per worker thread).
#[derive(Debug, Clone)]
pub struct KernelScratch {
    /// Local system matrix.
    pub matrix: DenseMatrix,
    /// Right-hand side, overwritten with the solution.
    pub rhs: Vec<f64>,
}

impl KernelScratch {
    /// Allocate scratch for elements with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            matrix: DenseMatrix::zeros(n, n),
            rhs: vec![0.0; n],
        }
    }
}

/// Timing breakdown of one kernel invocation (nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTiming {
    /// Time spent assembling `A` and `b`.
    pub assemble_ns: u64,
    /// Time spent in the linear solve.
    pub solve_ns: u64,
}

impl KernelTiming {
    /// Accumulate another timing into this one.
    pub fn accumulate(&mut self, other: KernelTiming) {
        self.assemble_ns += other.assemble_ns;
        self.solve_ns += other.solve_ns;
    }

    /// Total kernel time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.assemble_ns + self.solve_ns
    }

    /// Fraction of the kernel time spent in the solve (the "% in solve"
    /// column of Table II).
    pub fn solve_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.solve_ns as f64 / total as f64
        }
    }
}

/// Assemble the local system for one element/angle/group into `scratch`.
///
/// `source_nodes` is the total (fixed + scattering) isotropic source
/// density evaluated at the element nodes.  `upwind` lists every inflow
/// face with its upwind data; outflow faces are read from
/// `integrals.faces` and classified with `omega` internally.
pub fn assemble(
    integrals: &ElementIntegrals,
    omega: [f64; 3],
    sigma_t: f64,
    source_nodes: &[f64],
    upwind: &[UpwindFace<'_>],
    scratch: &mut KernelScratch,
) {
    let n = integrals.nodes_per_element();
    debug_assert_eq!(source_nodes.len(), n);
    debug_assert_eq!(scratch.matrix.rows(), n);

    // Volume terms: A = −Σ_d Ω_d G[d] + σ_t M, b = M q.
    let mass = &integrals.mass;
    let gx = &integrals.stream[0];
    let gy = &integrals.stream[1];
    let gz = &integrals.stream[2];
    for i in 0..n {
        let row_m = mass.row(i);
        let row_x = gx.row(i);
        let row_y = gy.row(i);
        let row_z = gz.row(i);
        let out_row = scratch.matrix.row_mut(i);
        let mut b_i = 0.0;
        for j in 0..n {
            let m_ij = row_m[j];
            out_row[j] =
                sigma_t * m_ij - (omega[0] * row_x[j] + omega[1] * row_y[j] + omega[2] * row_z[j]);
            b_i += m_ij * source_nodes[j];
        }
        scratch.rhs[i] = b_i;
    }

    // Outflow faces contribute to the matrix.
    for face in &integrals.faces {
        if face.direction_dot_normal(omega) <= 0.0 {
            continue;
        }
        let nf = face.node_indices.len();
        for a in 0..nf {
            let ia = face.node_indices[a];
            for b in 0..nf {
                let ib = face.node_indices[b];
                let f_ab = omega[0] * face.matrices[0][(a, b)]
                    + omega[1] * face.matrices[1][(a, b)]
                    + omega[2] * face.matrices[2][(a, b)];
                scratch.matrix[(ia, ib)] += f_ab;
            }
        }
    }

    // Inflow faces contribute the upwind flux to the right-hand side.
    for uw in upwind {
        let face = &integrals.faces[uw.face];
        let nf = face.node_indices.len();
        match uw.source {
            UpwindSource::Boundary(value) => {
                if value == 0.0 {
                    continue; // vacuum: nothing to add
                }
                for a in 0..nf {
                    let ia = face.node_indices[a];
                    let mut acc = 0.0;
                    for b in 0..nf {
                        acc += omega[0] * face.matrices[0][(a, b)]
                            + omega[1] * face.matrices[1][(a, b)]
                            + omega[2] * face.matrices[2][(a, b)];
                    }
                    scratch.rhs[ia] -= acc * value;
                }
            }
            UpwindSource::Interior {
                neighbor_psi,
                neighbor_face_nodes,
            } => {
                debug_assert_eq!(neighbor_face_nodes.len(), nf);
                for a in 0..nf {
                    let ia = face.node_indices[a];
                    let mut acc = 0.0;
                    for b in 0..nf {
                        let psi_up = neighbor_psi[neighbor_face_nodes[b]];
                        let f_ab = omega[0] * face.matrices[0][(a, b)]
                            + omega[1] * face.matrices[1][(a, b)]
                            + omega[2] * face.matrices[2][(a, b)];
                        acc += f_ab * psi_up;
                    }
                    scratch.rhs[ia] -= acc;
                }
            }
        }
    }
}

/// Assemble and solve one local system, returning the timing breakdown.
///
/// On return `scratch.rhs` holds the nodal angular flux of the element for
/// this angle and group.  When `time_solve` is false both phases are
/// reported under `assemble_ns` with `solve_ns = 0` (matching the paper's
/// untimed configuration, which avoids the per-solve timer overhead).
#[allow(clippy::too_many_arguments)]
pub fn assemble_solve(
    integrals: &ElementIntegrals,
    omega: [f64; 3],
    sigma_t: f64,
    source_nodes: &[f64],
    upwind: &[UpwindFace<'_>],
    solver: &dyn LinearSolver,
    time_solve: bool,
    scratch: &mut KernelScratch,
) -> KernelTiming {
    if time_solve {
        let t0 = Instant::now();
        assemble(integrals, omega, sigma_t, source_nodes, upwind, scratch);
        let assemble_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        solver
            .solve_in_place(&mut scratch.matrix, &mut scratch.rhs)
            .expect("local DG system should be non-singular");
        let solve_ns = t1.elapsed().as_nanos() as u64;
        KernelTiming {
            assemble_ns,
            solve_ns,
        }
    } else {
        let t0 = Instant::now();
        assemble(integrals, omega, sigma_t, source_nodes, upwind, scratch);
        solver
            .solve_in_place(&mut scratch.matrix, &mut scratch.rhs)
            .expect("local DG system should be non-singular");
        KernelTiming {
            assemble_ns: t0.elapsed().as_nanos() as u64,
            solve_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_fem::element::ReferenceElement;
    use unsnap_fem::face::{face_node_indices, Face, FACES};
    use unsnap_fem::geometry::HexVertices;
    use unsnap_linalg::{GaussSolver, SolverKind};

    fn unit_integrals(order: usize) -> ElementIntegrals {
        ElementIntegrals::compute(&ReferenceElement::new(order), &HexVertices::unit_cube())
    }

    /// Inflow faces for a constant incoming flux on every inflow boundary.
    fn boundary_upwind(
        integrals: &ElementIntegrals,
        omega: [f64; 3],
        value: f64,
    ) -> Vec<UpwindFace<'static>> {
        FACES
            .iter()
            .filter(|f| integrals.face(**f).direction_dot_normal(omega) < 0.0)
            .map(|f| UpwindFace {
                face: f.index(),
                source: UpwindSource::Boundary(value),
            })
            .collect()
    }

    #[test]
    fn constant_solution_is_reproduced_exactly() {
        // If the incoming flux is the constant C on every inflow face and
        // the source is σ_t·C (so scattering + source balance collisions
        // for a flat solution), then ψ ≡ C solves the transport equation
        // and the DG discretisation must reproduce it to round-off.
        for order in [1usize, 2] {
            let integrals = unit_integrals(order);
            let n = integrals.nodes_per_element();
            let sigma_t = 1.7;
            let c = 2.5;
            let omega = [0.48, 0.62, 0.6208];
            let source = vec![sigma_t * c; n];
            let upwind = boundary_upwind(&integrals, omega, c);
            let mut scratch = KernelScratch::new(n);
            let solver = GaussSolver::new();
            assemble_solve(
                &integrals,
                omega,
                sigma_t,
                &source,
                &upwind,
                &solver,
                false,
                &mut scratch,
            );
            for (i, &psi) in scratch.rhs.iter().enumerate() {
                assert!(
                    (psi - c).abs() < 1e-10,
                    "order {order}, node {i}: ψ = {psi}, expected {c}"
                );
            }
        }
    }

    #[test]
    fn linear_solution_is_reproduced_exactly() {
        // Manufactured solution ψ(x) = a·x + b with source
        // q = Ω·a + σ_t ψ; linear elements reproduce it exactly when the
        // incoming boundary data is exact.
        let order = 1;
        let element = ReferenceElement::new(order);
        let hex = HexVertices::axis_aligned([0.0; 3], [1.0, 1.0, 1.0]);
        let integrals = ElementIntegrals::compute(&element, &hex);
        let n = integrals.nodes_per_element();
        let a = [0.3, -0.2, 0.5];
        let b = 2.0;
        let psi_exact = |x: [f64; 3]| a[0] * x[0] + a[1] * x[1] + a[2] * x[2] + b;
        let omega = [0.58, 0.55, 0.6];
        let sigma_t = 1.3;
        let omega_dot_a = omega[0] * a[0] + omega[1] * a[1] + omega[2] * a[2];

        // Node coordinates of the element (reference [-1,1]³ → unit cube).
        let node_x: Vec<[f64; 3]> = element
            .node_coordinates()
            .iter()
            .map(|xi| hex.map(*xi))
            .collect();
        let source: Vec<f64> = node_x
            .iter()
            .map(|&x| omega_dot_a + sigma_t * psi_exact(x))
            .collect();

        // Upwind data: the exact solution on the inflow faces.  We need a
        // "neighbour" whose face nodes carry the exact values; use this
        // element itself as the fake neighbour (geometry matches since the
        // trace is the same).
        let exact_nodes: Vec<f64> = node_x.iter().map(|&x| psi_exact(x)).collect();
        let mut face_nodes_store: Vec<Vec<usize>> = Vec::new();
        for f in &FACES {
            face_nodes_store.push(face_node_indices(*f, order));
        }
        let mut upwind = Vec::new();
        for f in &FACES {
            if integrals.face(*f).direction_dot_normal(omega) < 0.0 {
                upwind.push(UpwindFace {
                    face: f.index(),
                    source: UpwindSource::Interior {
                        neighbor_psi: &exact_nodes,
                        neighbor_face_nodes: &face_nodes_store[f.index()],
                    },
                });
            }
        }

        let mut scratch = KernelScratch::new(n);
        let solver = GaussSolver::new();
        assemble_solve(
            &integrals,
            omega,
            sigma_t,
            &source,
            &upwind,
            &solver,
            false,
            &mut scratch,
        );
        for (i, &psi) in scratch.rhs.iter().enumerate() {
            let expected = psi_exact(node_x[i]);
            assert!(
                (psi - expected).abs() < 1e-9,
                "node {i}: ψ = {psi}, expected {expected}"
            );
        }
    }

    #[test]
    fn all_backends_agree_on_the_same_system() {
        let integrals = unit_integrals(2);
        let n = integrals.nodes_per_element();
        let omega = [-0.51, 0.62, -0.59];
        let sigma_t = 2.0;
        let source = vec![1.0; n];
        let upwind = boundary_upwind(&integrals, omega, 0.3);
        let mut reference: Option<Vec<f64>> = None;
        for kind in SolverKind::all() {
            let solver = kind.build();
            let mut scratch = KernelScratch::new(n);
            assemble_solve(
                &integrals,
                omega,
                sigma_t,
                &source,
                &upwind,
                solver.as_ref(),
                false,
                &mut scratch,
            );
            match &reference {
                None => reference = Some(scratch.rhs.clone()),
                Some(r) => {
                    for (a, b) in r.iter().zip(scratch.rhs.iter()) {
                        assert!((a - b).abs() < 1e-9, "{kind} disagrees");
                    }
                }
            }
        }
    }

    #[test]
    fn vacuum_boundaries_with_positive_source_give_positive_flux() {
        let integrals = unit_integrals(1);
        let n = integrals.nodes_per_element();
        let omega = [0.7, 0.5, 0.51];
        let source = vec![1.0; n];
        let upwind = boundary_upwind(&integrals, omega, 0.0);
        let mut scratch = KernelScratch::new(n);
        let solver = GaussSolver::new();
        assemble_solve(
            &integrals,
            omega,
            1.0,
            &source,
            &upwind,
            &solver,
            true,
            &mut scratch,
        );
        // Mean flux is positive and below the infinite-medium limit q/σ_t.
        let mean: f64 = scratch.rhs.iter().sum::<f64>() / n as f64;
        assert!(mean > 0.0);
        assert!(mean < 1.0 + 1e-12);
    }

    #[test]
    fn timing_split_reports_both_phases() {
        let integrals = unit_integrals(2);
        let n = integrals.nodes_per_element();
        let omega = [0.6, 0.58, 0.55];
        let source = vec![1.0; n];
        let upwind = boundary_upwind(&integrals, omega, 0.0);
        let solver = GaussSolver::new();
        let mut scratch = KernelScratch::new(n);
        let t = assemble_solve(
            &integrals,
            omega,
            1.0,
            &source,
            &upwind,
            &solver,
            true,
            &mut scratch,
        );
        assert!(t.assemble_ns > 0);
        assert!(t.solve_ns > 0);
        assert_eq!(t.total_ns(), t.assemble_ns + t.solve_ns);
        assert!(t.solve_fraction() > 0.0 && t.solve_fraction() < 1.0);

        let untimed = assemble_solve(
            &integrals,
            omega,
            1.0,
            &source,
            &upwind,
            &solver,
            false,
            &mut scratch,
        );
        assert_eq!(untimed.solve_ns, 0);
        assert!(untimed.assemble_ns > 0);
    }

    #[test]
    fn timing_accumulation() {
        let mut total = KernelTiming::default();
        total.accumulate(KernelTiming {
            assemble_ns: 10,
            solve_ns: 30,
        });
        total.accumulate(KernelTiming {
            assemble_ns: 5,
            solve_ns: 5,
        });
        assert_eq!(total.assemble_ns, 15);
        assert_eq!(total.solve_ns, 35);
        assert_eq!(total.total_ns(), 50);
        assert!((total.solve_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(KernelTiming::default().solve_fraction(), 0.0);
    }

    #[test]
    fn upwind_neighbor_mapping_uses_neighbor_face_nodes() {
        // Give the fake neighbour a flux that varies across its face and
        // check the kernel picks up the values at the matching positions:
        // feeding the *same* values through a boundary-style constant would
        // change the answer, so a mismatch in the mapping is detectable.
        let order = 1;
        let integrals = unit_integrals(order);
        let n = integrals.nodes_per_element();
        let omega = [0.9, 0.3, 0.31];
        let sigma_t = 1.0;
        let source = vec![0.0; n];

        // Upwind only through the x- face; neighbour flux varies with y, z.
        let neighbor_face_nodes = face_node_indices(Face::XPlus, order);
        let mut neighbor_psi = vec![0.0; n];
        for (m, &idx) in neighbor_face_nodes.iter().enumerate() {
            neighbor_psi[idx] = 1.0 + m as f64;
        }
        let upwind = vec![UpwindFace {
            face: Face::XMinus.index(),
            source: UpwindSource::Interior {
                neighbor_psi: &neighbor_psi,
                neighbor_face_nodes: &neighbor_face_nodes,
            },
        }];
        let mut scratch = KernelScratch::new(n);
        let solver = GaussSolver::new();
        assemble_solve(
            &integrals,
            omega,
            sigma_t,
            &source,
            &upwind,
            &solver,
            false,
            &mut scratch,
        );
        // The incoming flux increases with the face-node index, i.e. with
        // y and z; the downstream solution must preserve that ordering at
        // the inflow-face nodes.
        let my_face_nodes = face_node_indices(Face::XMinus, order);
        let vals: Vec<f64> = my_face_nodes.iter().map(|&i| scratch.rhs[i]).collect();
        assert!(vals.windows(2).all(|w| w[1] > w[0]), "{vals:?}");
        assert!(vals.iter().all(|&v| v > 0.0));
    }
}
