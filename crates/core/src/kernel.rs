//! The assemble/solve kernel: one local DG system per
//! element × angle × energy group.
//!
//! This is the computation at the heart of the sweep (Figure 2 of the
//! paper):
//!
//! * **Assemble `A`** from the Sn direction, the total cross section and
//!   the precomputed basis-pair integrals:
//!
//!   `A = −Σ_d Ω_d G[d] + σ_t M + Σ_{outflow faces} ∫ φ_i φ_j (Ω·n) dS`
//!
//!   where `G[d]` are the streaming matrices and `M` the mass matrix.
//!
//! * **Assemble `b`** from the source and the upwind neighbour flux:
//!
//!   `b_i = Σ_j M_ij q_j − Σ_{inflow faces} Σ_j ∫ φ_i φ_j (Ω·n) dS ψ^up_j`
//!
//!   (the inflow integrand is negative, so the upwind term adds particles).
//!
//! * **Solve `A ψ = b`** with the selected dense solver (hand-written
//!   Gaussian elimination, reference LU, or the blocked-LU MKL stand-in).
//!
//! The kernel is written so that the hot loops run over contiguous slices
//! (matrix rows, node vectors) and reuses caller-provided scratch storage —
//! no allocation happens per invocation once the scratch is warm.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_linalg::{DenseMatrix, LinearSolver};

use crate::layout::Precision;

/// Which assemble kernel runs the per-cell hot loop.
///
/// Both kernels produce bit-for-bit identical systems: the blocked
/// kernel caches the direction-dependent geometry tiles (streaming
/// matrix and outflow face entries) per `(element, Ω)` and replays the
/// reference operation order from the cache, so reusing a cached `f64`
/// is indistinguishable from recomputing it.  The payoff is that the
/// per-group work drops to `σ_t·M` minus a preformed SoA tile — the
/// groups of one element are consecutive in the collapsed loop order,
/// so the cache hits on every group after the first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum KernelKind {
    /// The scalar reference kernel, unchanged since the seed.
    #[default]
    Reference,
    /// SoA cache-blocked kernel reusing per-(element, Ω) geometry tiles.
    Blocked,
}

impl KernelKind {
    /// Every kernel, in fixed ablation order.
    pub fn all() -> [KernelKind; 2] {
        [KernelKind::Reference, KernelKind::Blocked]
    }

    /// Short name used in tables and for CLI/env selection.
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::Reference => "reference",
            KernelKind::Blocked => "blocked",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reference" | "ref" | "scalar" => Ok(KernelKind::Reference),
            "blocked" | "soa" | "cache-blocked" => Ok(KernelKind::Blocked),
            other => Err(format!("unknown kernel '{other}'")),
        }
    }
}

/// Where the upwind flux for one inflow face comes from.
#[derive(Debug, Clone, Copy)]
pub enum UpwindSource<'a> {
    /// The face lies on the domain boundary: a single prescribed incoming
    /// angular-flux value.
    Boundary(f64),
    /// The face is interior: the neighbour's node-contiguous angular-flux
    /// slice for the same angle and group, together with the neighbour's
    /// face-local node indices (so entry `m` of the face pairs with
    /// `neighbor_psi[neighbor_face_nodes[m]]`).
    Interior {
        /// Neighbour element's angular-flux nodes (all of them).
        neighbor_psi: &'a [f64],
        /// The neighbour's element-local node indices on the shared face,
        /// in the canonical face order.
        neighbor_face_nodes: &'a [usize],
    },
}

/// One inflow-face description handed to the kernel.
#[derive(Debug, Clone, Copy)]
pub struct UpwindFace<'a> {
    /// Face index (0..6) of the element being solved.
    pub face: usize,
    /// Where the upwind flux comes from.
    pub source: UpwindSource<'a>,
}

/// Reusable scratch space for the kernel (one per worker thread).
#[derive(Debug, Clone)]
pub struct KernelScratch {
    /// Local system matrix.
    pub matrix: DenseMatrix,
    /// Right-hand side, overwritten with the solution.
    pub rhs: Vec<f64>,
    /// Tag of the `(cache key, Ω bit pattern)` whose geometry tiles are
    /// currently loaded; `None` until the blocked kernel warms it.
    geo_key: Option<(usize, [u64; 3])>,
    /// Cached streaming tile `Σ_d Ω_d G[d]` for the tagged key.
    geo_streaming: DenseMatrix,
    /// Cached outflow surface entries `(i, j, f_ij)` for the tagged key,
    /// in reference accumulation order.
    geo_outflow: Vec<(usize, usize, f64)>,
    /// Single-precision mirror of `matrix` for the mixed-precision solve.
    matrix32: Vec<f32>,
    /// Single-precision mirror of `rhs` for the mixed-precision solve.
    rhs32: Vec<f32>,
}

impl KernelScratch {
    /// Allocate scratch for elements with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            matrix: DenseMatrix::zeros(n, n),
            rhs: vec![0.0; n],
            geo_key: None,
            geo_streaming: DenseMatrix::zeros(n, n),
            geo_outflow: Vec::new(),
            matrix32: vec![0.0; n * n],
            rhs32: vec![0.0; n],
        }
    }
}

/// Timing breakdown of one kernel invocation (nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTiming {
    /// Time spent assembling `A` and `b`.
    pub assemble_ns: u64,
    /// Time spent in the linear solve.
    pub solve_ns: u64,
}

impl KernelTiming {
    /// Accumulate another timing into this one.
    pub fn accumulate(&mut self, other: KernelTiming) {
        self.assemble_ns += other.assemble_ns;
        self.solve_ns += other.solve_ns;
    }

    /// Total kernel time in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.assemble_ns + self.solve_ns
    }

    /// Fraction of the kernel time spent in the solve (the "% in solve"
    /// column of Table II).
    pub fn solve_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.solve_ns as f64 / total as f64
        }
    }
}

/// Assemble the local system for one element/angle/group into `scratch`.
///
/// `source_nodes` is the total (fixed + scattering) isotropic source
/// density evaluated at the element nodes.  `upwind` lists every inflow
/// face with its upwind data; outflow faces are read from
/// `integrals.faces` and classified with `omega` internally.
pub fn assemble(
    integrals: &ElementIntegrals,
    omega: [f64; 3],
    sigma_t: f64,
    source_nodes: &[f64],
    upwind: &[UpwindFace<'_>],
    scratch: &mut KernelScratch,
) {
    let n = integrals.nodes_per_element();
    debug_assert_eq!(source_nodes.len(), n);
    debug_assert_eq!(scratch.matrix.rows(), n);

    // Volume terms: A = −Σ_d Ω_d G[d] + σ_t M, b = M q.
    let mass = &integrals.mass;
    let gx = &integrals.stream[0];
    let gy = &integrals.stream[1];
    let gz = &integrals.stream[2];
    for i in 0..n {
        let row_m = mass.row(i);
        let row_x = gx.row(i);
        let row_y = gy.row(i);
        let row_z = gz.row(i);
        let out_row = scratch.matrix.row_mut(i);
        let mut b_i = 0.0;
        for j in 0..n {
            let m_ij = row_m[j];
            out_row[j] =
                sigma_t * m_ij - (omega[0] * row_x[j] + omega[1] * row_y[j] + omega[2] * row_z[j]);
            b_i += m_ij * source_nodes[j];
        }
        scratch.rhs[i] = b_i;
    }

    // Outflow faces contribute to the matrix.
    for face in &integrals.faces {
        if face.direction_dot_normal(omega) <= 0.0 {
            continue;
        }
        let nf = face.node_indices.len();
        for a in 0..nf {
            let ia = face.node_indices[a];
            for b in 0..nf {
                let ib = face.node_indices[b];
                let f_ab = omega[0] * face.matrices[0][(a, b)]
                    + omega[1] * face.matrices[1][(a, b)]
                    + omega[2] * face.matrices[2][(a, b)];
                scratch.matrix[(ia, ib)] += f_ab;
            }
        }
    }

    // Inflow faces contribute the upwind flux to the right-hand side.
    apply_inflow(integrals, omega, upwind, &mut scratch.rhs);
}

/// Apply the inflow-face upwind contributions to the right-hand side.
///
/// Shared verbatim by the reference and blocked kernels: the upwind data
/// is group-dependent, so it is never cached, and keeping a single copy
/// of the loop guarantees both kernels execute the identical operation
/// sequence here.
fn apply_inflow(
    integrals: &ElementIntegrals,
    omega: [f64; 3],
    upwind: &[UpwindFace<'_>],
    rhs: &mut [f64],
) {
    for uw in upwind {
        let face = &integrals.faces[uw.face];
        let nf = face.node_indices.len();
        match uw.source {
            UpwindSource::Boundary(value) => {
                if value == 0.0 {
                    continue; // vacuum: nothing to add
                }
                for a in 0..nf {
                    let ia = face.node_indices[a];
                    let mut acc = 0.0;
                    for b in 0..nf {
                        acc += omega[0] * face.matrices[0][(a, b)]
                            + omega[1] * face.matrices[1][(a, b)]
                            + omega[2] * face.matrices[2][(a, b)];
                    }
                    rhs[ia] -= acc * value;
                }
            }
            UpwindSource::Interior {
                neighbor_psi,
                neighbor_face_nodes,
            } => {
                debug_assert_eq!(neighbor_face_nodes.len(), nf);
                for a in 0..nf {
                    let ia = face.node_indices[a];
                    let mut acc = 0.0;
                    for b in 0..nf {
                        let psi_up = neighbor_psi[neighbor_face_nodes[b]];
                        let f_ab = omega[0] * face.matrices[0][(a, b)]
                            + omega[1] * face.matrices[1][(a, b)]
                            + omega[2] * face.matrices[2][(a, b)];
                        acc += f_ab * psi_up;
                    }
                    rhs[ia] -= acc;
                }
            }
        }
    }
}

/// Assemble the local system with the SoA cache-blocked kernel.
///
/// `cache_key` identifies the element whose geometry tiles may be
/// reused (the caller passes the element's deterministic index).  On a
/// cache miss the kernel computes the streaming tile `Σ_d Ω_d G[d]` and
/// the outflow surface entries with exactly the reference expressions
/// and stores them; on a hit it replays the stored `f64` values in the
/// reference accumulation order.  Either way every floating-point
/// operation that touches the system matches [`assemble`] bit for bit —
/// a reused `f64` has the same bits as a recomputed one.
pub fn assemble_blocked(
    integrals: &ElementIntegrals,
    omega: [f64; 3],
    sigma_t: f64,
    source_nodes: &[f64],
    upwind: &[UpwindFace<'_>],
    cache_key: usize,
    scratch: &mut KernelScratch,
) {
    let n = integrals.nodes_per_element();
    debug_assert_eq!(source_nodes.len(), n);
    debug_assert_eq!(scratch.matrix.rows(), n);

    let key = (
        cache_key,
        [omega[0].to_bits(), omega[1].to_bits(), omega[2].to_bits()],
    );
    if scratch.geo_key != Some(key) || scratch.geo_streaming.rows() != n {
        if scratch.geo_streaming.rows() != n {
            scratch.geo_streaming = DenseMatrix::zeros(n, n);
        }
        let gx = &integrals.stream[0];
        let gy = &integrals.stream[1];
        let gz = &integrals.stream[2];
        for i in 0..n {
            let row_x = gx.row(i);
            let row_y = gy.row(i);
            let row_z = gz.row(i);
            let out = scratch.geo_streaming.row_mut(i);
            for j in 0..n {
                // Identical expression (and therefore identical bits) to
                // the parenthesised streaming term in `assemble`.
                out[j] = omega[0] * row_x[j] + omega[1] * row_y[j] + omega[2] * row_z[j];
            }
        }
        scratch.geo_outflow.clear();
        for face in &integrals.faces {
            if face.direction_dot_normal(omega) <= 0.0 {
                continue;
            }
            let nf = face.node_indices.len();
            for a in 0..nf {
                let ia = face.node_indices[a];
                for b in 0..nf {
                    let ib = face.node_indices[b];
                    let f_ab = omega[0] * face.matrices[0][(a, b)]
                        + omega[1] * face.matrices[1][(a, b)]
                        + omega[2] * face.matrices[2][(a, b)];
                    scratch.geo_outflow.push((ia, ib, f_ab));
                }
            }
        }
        scratch.geo_key = Some(key);
    }

    // Per-group tile: σ_t·M minus the cached streaming tile, in the
    // reference operation order (one multiply, one subtract per entry).
    let mass = &integrals.mass;
    for i in 0..n {
        let row_m = mass.row(i);
        let row_s = scratch.geo_streaming.row(i);
        let out_row = scratch.matrix.row_mut(i);
        let mut b_i = 0.0;
        for j in 0..n {
            let m_ij = row_m[j];
            out_row[j] = sigma_t * m_ij - row_s[j];
            b_i += m_ij * source_nodes[j];
        }
        scratch.rhs[i] = b_i;
    }
    for &(ia, ib, f_ab) in &scratch.geo_outflow {
        scratch.matrix[(ia, ib)] += f_ab;
    }

    apply_inflow(integrals, omega, upwind, &mut scratch.rhs);
}

/// Assemble and solve one local system, returning the timing breakdown.
///
/// On return `scratch.rhs` holds the nodal angular flux of the element for
/// this angle and group.  When `time_solve` is false both phases are
/// reported under `assemble_ns` with `solve_ns = 0` (matching the paper's
/// untimed configuration, which avoids the per-solve timer overhead).
#[allow(clippy::too_many_arguments)]
pub fn assemble_solve(
    integrals: &ElementIntegrals,
    omega: [f64; 3],
    sigma_t: f64,
    source_nodes: &[f64],
    upwind: &[UpwindFace<'_>],
    solver: &dyn LinearSolver,
    time_solve: bool,
    scratch: &mut KernelScratch,
) -> KernelTiming {
    if time_solve {
        let t0 = Instant::now();
        assemble(integrals, omega, sigma_t, source_nodes, upwind, scratch);
        let assemble_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        solver
            .solve_in_place(&mut scratch.matrix, &mut scratch.rhs)
            .expect("local DG system should be non-singular");
        let solve_ns = t1.elapsed().as_nanos() as u64;
        KernelTiming {
            assemble_ns,
            solve_ns,
        }
    } else {
        let t0 = Instant::now();
        assemble(integrals, omega, sigma_t, source_nodes, upwind, scratch);
        solver
            .solve_in_place(&mut scratch.matrix, &mut scratch.rhs)
            .expect("local DG system should be non-singular");
        KernelTiming {
            assemble_ns: t0.elapsed().as_nanos() as u64,
            solve_ns: 0,
        }
    }
}

/// Solve the assembled system in single precision.
///
/// Casts `scratch.matrix`/`scratch.rhs` down to `f32`, runs an in-place
/// Gaussian elimination with partial pivoting, and writes the widened
/// solution back into `scratch.rhs`.  The assembly stays in `f64` (same
/// operation order as the selected kernel); only the storage and the
/// elimination arithmetic are single precision, mirroring the paper's
/// mixed-precision sweep variant.
fn solve_f32_in_place(scratch: &mut KernelScratch) {
    let n = scratch.rhs.len();
    scratch.matrix32.resize(n * n, 0.0);
    scratch.rhs32.resize(n, 0.0);
    for i in 0..n {
        let row = scratch.matrix.row(i);
        for j in 0..n {
            scratch.matrix32[i * n + j] = row[j] as f32;
        }
        scratch.rhs32[i] = scratch.rhs[i] as f32;
    }
    let a = &mut scratch.matrix32;
    let b = &mut scratch.rhs32;
    for col in 0..n {
        // Partial pivoting: largest |a[row][col]| among the remaining rows.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let mag = a[row * n + col].abs();
            if mag > best {
                best = mag;
                pivot = row;
            }
        }
        assert!(best > 0.0, "local DG system should be non-singular");
        if pivot != col {
            for j in col..n {
                a.swap(col * n + j, pivot * n + j);
            }
            b.swap(col, pivot);
        }
        let inv = 1.0 / a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] * inv;
            if factor == 0.0 {
                continue;
            }
            for j in (col + 1)..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }
    for col in (0..n).rev() {
        let mut acc = b[col];
        for j in (col + 1)..n {
            acc -= a[col * n + j] * b[j];
        }
        b[col] = acc / a[col * n + col];
    }
    for i in 0..n {
        scratch.rhs[i] = scratch.rhs32[i] as f64;
    }
}

/// The kernel-engine seam: which assemble kernel runs and at which
/// solve precision, resolved once per solver from
/// [`Problem::kernel`](crate::problem::Problem) and
/// [`Problem::precision`](crate::problem::Problem).
///
/// `Reference` + `F64` reproduces the free [`assemble_solve`] exactly,
/// bit for bit.  `Blocked` swaps in [`assemble_blocked`] (still
/// bit-for-bit, see its contract); `Mixed` precision swaps the dense
/// solve for an in-place `f32` partial-pivot elimination while outer
/// iterations stay `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelEngine {
    kind: KernelKind,
    precision: Precision,
}

impl KernelEngine {
    /// Build an engine from the two knobs.
    pub fn new(kind: KernelKind, precision: Precision) -> Self {
        Self { kind, precision }
    }

    /// The selected assemble kernel.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The selected solve precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Assemble and solve one local system through the engine.
    ///
    /// `cache_key` must identify the element deterministically across
    /// runs (the solvers pass the element's mesh index); the blocked
    /// kernel keys its geometry cache on it.  In mixed precision the
    /// `solver` argument is bypassed — the engine's built-in `f32`
    /// partial-pivot elimination runs instead.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_solve(
        &self,
        cache_key: usize,
        integrals: &ElementIntegrals,
        omega: [f64; 3],
        sigma_t: f64,
        source_nodes: &[f64],
        upwind: &[UpwindFace<'_>],
        solver: &dyn LinearSolver,
        time_solve: bool,
        scratch: &mut KernelScratch,
    ) -> KernelTiming {
        if self.kind == KernelKind::Reference && self.precision == Precision::F64 {
            // The seed path, verbatim.
            return assemble_solve(
                integrals,
                omega,
                sigma_t,
                source_nodes,
                upwind,
                solver,
                time_solve,
                scratch,
            );
        }
        if time_solve {
            let t0 = Instant::now();
            self.assemble_only(
                cache_key,
                integrals,
                omega,
                sigma_t,
                source_nodes,
                upwind,
                scratch,
            );
            let assemble_ns = t0.elapsed().as_nanos() as u64;
            let t1 = Instant::now();
            self.solve_only(solver, scratch);
            KernelTiming {
                assemble_ns,
                solve_ns: t1.elapsed().as_nanos() as u64,
            }
        } else {
            let t0 = Instant::now();
            self.assemble_only(
                cache_key,
                integrals,
                omega,
                sigma_t,
                source_nodes,
                upwind,
                scratch,
            );
            self.solve_only(solver, scratch);
            KernelTiming {
                assemble_ns: t0.elapsed().as_nanos() as u64,
                solve_ns: 0,
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble_only(
        &self,
        cache_key: usize,
        integrals: &ElementIntegrals,
        omega: [f64; 3],
        sigma_t: f64,
        source_nodes: &[f64],
        upwind: &[UpwindFace<'_>],
        scratch: &mut KernelScratch,
    ) {
        match self.kind {
            KernelKind::Reference => {
                assemble(integrals, omega, sigma_t, source_nodes, upwind, scratch)
            }
            KernelKind::Blocked => assemble_blocked(
                integrals,
                omega,
                sigma_t,
                source_nodes,
                upwind,
                cache_key,
                scratch,
            ),
        }
    }

    fn solve_only(&self, solver: &dyn LinearSolver, scratch: &mut KernelScratch) {
        match self.precision {
            Precision::F64 => solver
                .solve_in_place(&mut scratch.matrix, &mut scratch.rhs)
                .expect("local DG system should be non-singular"),
            Precision::Mixed => solve_f32_in_place(scratch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_fem::element::ReferenceElement;
    use unsnap_fem::face::{face_node_indices, Face, FACES};
    use unsnap_fem::geometry::HexVertices;
    use unsnap_linalg::{GaussSolver, SolverKind};

    fn unit_integrals(order: usize) -> ElementIntegrals {
        ElementIntegrals::compute(&ReferenceElement::new(order), &HexVertices::unit_cube())
    }

    /// Inflow faces for a constant incoming flux on every inflow boundary.
    fn boundary_upwind(
        integrals: &ElementIntegrals,
        omega: [f64; 3],
        value: f64,
    ) -> Vec<UpwindFace<'static>> {
        FACES
            .iter()
            .filter(|f| integrals.face(**f).direction_dot_normal(omega) < 0.0)
            .map(|f| UpwindFace {
                face: f.index(),
                source: UpwindSource::Boundary(value),
            })
            .collect()
    }

    #[test]
    fn constant_solution_is_reproduced_exactly() {
        // If the incoming flux is the constant C on every inflow face and
        // the source is σ_t·C (so scattering + source balance collisions
        // for a flat solution), then ψ ≡ C solves the transport equation
        // and the DG discretisation must reproduce it to round-off.
        for order in [1usize, 2] {
            let integrals = unit_integrals(order);
            let n = integrals.nodes_per_element();
            let sigma_t = 1.7;
            let c = 2.5;
            let omega = [0.48, 0.62, 0.6208];
            let source = vec![sigma_t * c; n];
            let upwind = boundary_upwind(&integrals, omega, c);
            let mut scratch = KernelScratch::new(n);
            let solver = GaussSolver::new();
            assemble_solve(
                &integrals,
                omega,
                sigma_t,
                &source,
                &upwind,
                &solver,
                false,
                &mut scratch,
            );
            for (i, &psi) in scratch.rhs.iter().enumerate() {
                assert!(
                    (psi - c).abs() < 1e-10,
                    "order {order}, node {i}: ψ = {psi}, expected {c}"
                );
            }
        }
    }

    #[test]
    fn linear_solution_is_reproduced_exactly() {
        // Manufactured solution ψ(x) = a·x + b with source
        // q = Ω·a + σ_t ψ; linear elements reproduce it exactly when the
        // incoming boundary data is exact.
        let order = 1;
        let element = ReferenceElement::new(order);
        let hex = HexVertices::axis_aligned([0.0; 3], [1.0, 1.0, 1.0]);
        let integrals = ElementIntegrals::compute(&element, &hex);
        let n = integrals.nodes_per_element();
        let a = [0.3, -0.2, 0.5];
        let b = 2.0;
        let psi_exact = |x: [f64; 3]| a[0] * x[0] + a[1] * x[1] + a[2] * x[2] + b;
        let omega = [0.58, 0.55, 0.6];
        let sigma_t = 1.3;
        let omega_dot_a = omega[0] * a[0] + omega[1] * a[1] + omega[2] * a[2];

        // Node coordinates of the element (reference [-1,1]³ → unit cube).
        let node_x: Vec<[f64; 3]> = element
            .node_coordinates()
            .iter()
            .map(|xi| hex.map(*xi))
            .collect();
        let source: Vec<f64> = node_x
            .iter()
            .map(|&x| omega_dot_a + sigma_t * psi_exact(x))
            .collect();

        // Upwind data: the exact solution on the inflow faces.  We need a
        // "neighbour" whose face nodes carry the exact values; use this
        // element itself as the fake neighbour (geometry matches since the
        // trace is the same).
        let exact_nodes: Vec<f64> = node_x.iter().map(|&x| psi_exact(x)).collect();
        let mut face_nodes_store: Vec<Vec<usize>> = Vec::new();
        for f in &FACES {
            face_nodes_store.push(face_node_indices(*f, order));
        }
        let mut upwind = Vec::new();
        for f in &FACES {
            if integrals.face(*f).direction_dot_normal(omega) < 0.0 {
                upwind.push(UpwindFace {
                    face: f.index(),
                    source: UpwindSource::Interior {
                        neighbor_psi: &exact_nodes,
                        neighbor_face_nodes: &face_nodes_store[f.index()],
                    },
                });
            }
        }

        let mut scratch = KernelScratch::new(n);
        let solver = GaussSolver::new();
        assemble_solve(
            &integrals,
            omega,
            sigma_t,
            &source,
            &upwind,
            &solver,
            false,
            &mut scratch,
        );
        for (i, &psi) in scratch.rhs.iter().enumerate() {
            let expected = psi_exact(node_x[i]);
            assert!(
                (psi - expected).abs() < 1e-9,
                "node {i}: ψ = {psi}, expected {expected}"
            );
        }
    }

    #[test]
    fn all_backends_agree_on_the_same_system() {
        let integrals = unit_integrals(2);
        let n = integrals.nodes_per_element();
        let omega = [-0.51, 0.62, -0.59];
        let sigma_t = 2.0;
        let source = vec![1.0; n];
        let upwind = boundary_upwind(&integrals, omega, 0.3);
        let mut reference: Option<Vec<f64>> = None;
        for kind in SolverKind::all() {
            let solver = kind.build();
            let mut scratch = KernelScratch::new(n);
            assemble_solve(
                &integrals,
                omega,
                sigma_t,
                &source,
                &upwind,
                solver.as_ref(),
                false,
                &mut scratch,
            );
            match &reference {
                None => reference = Some(scratch.rhs.clone()),
                Some(r) => {
                    for (a, b) in r.iter().zip(scratch.rhs.iter()) {
                        assert!((a - b).abs() < 1e-9, "{kind} disagrees");
                    }
                }
            }
        }
    }

    #[test]
    fn vacuum_boundaries_with_positive_source_give_positive_flux() {
        let integrals = unit_integrals(1);
        let n = integrals.nodes_per_element();
        let omega = [0.7, 0.5, 0.51];
        let source = vec![1.0; n];
        let upwind = boundary_upwind(&integrals, omega, 0.0);
        let mut scratch = KernelScratch::new(n);
        let solver = GaussSolver::new();
        assemble_solve(
            &integrals,
            omega,
            1.0,
            &source,
            &upwind,
            &solver,
            true,
            &mut scratch,
        );
        // Mean flux is positive and below the infinite-medium limit q/σ_t.
        let mean: f64 = scratch.rhs.iter().sum::<f64>() / n as f64;
        assert!(mean > 0.0);
        assert!(mean < 1.0 + 1e-12);
    }

    #[test]
    fn timing_split_reports_both_phases() {
        let integrals = unit_integrals(2);
        let n = integrals.nodes_per_element();
        let omega = [0.6, 0.58, 0.55];
        let source = vec![1.0; n];
        let upwind = boundary_upwind(&integrals, omega, 0.0);
        let solver = GaussSolver::new();
        let mut scratch = KernelScratch::new(n);
        let t = assemble_solve(
            &integrals,
            omega,
            1.0,
            &source,
            &upwind,
            &solver,
            true,
            &mut scratch,
        );
        assert!(t.assemble_ns > 0);
        assert!(t.solve_ns > 0);
        assert_eq!(t.total_ns(), t.assemble_ns + t.solve_ns);
        assert!(t.solve_fraction() > 0.0 && t.solve_fraction() < 1.0);

        let untimed = assemble_solve(
            &integrals,
            omega,
            1.0,
            &source,
            &upwind,
            &solver,
            false,
            &mut scratch,
        );
        assert_eq!(untimed.solve_ns, 0);
        assert!(untimed.assemble_ns > 0);
    }

    #[test]
    fn timing_accumulation() {
        let mut total = KernelTiming::default();
        total.accumulate(KernelTiming {
            assemble_ns: 10,
            solve_ns: 30,
        });
        total.accumulate(KernelTiming {
            assemble_ns: 5,
            solve_ns: 5,
        });
        assert_eq!(total.assemble_ns, 15);
        assert_eq!(total.solve_ns, 35);
        assert_eq!(total.total_ns(), 50);
        assert!((total.solve_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(KernelTiming::default().solve_fraction(), 0.0);
    }

    #[test]
    fn kernel_kind_round_trips_through_strings() {
        for kind in KernelKind::all() {
            let parsed: KernelKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(format!("{kind}"), kind.label());
        }
        assert_eq!("soa".parse::<KernelKind>(), Ok(KernelKind::Blocked));
        assert_eq!("REF".parse::<KernelKind>(), Ok(KernelKind::Reference));
        assert!("vectorised".parse::<KernelKind>().is_err());
        assert_eq!(KernelKind::default(), KernelKind::Reference);
    }

    #[test]
    fn blocked_assembly_is_bit_for_bit_identical_to_reference() {
        // Same systems through both kernels, including repeated calls so
        // the blocked kernel serves from a warm geometry cache, and key /
        // direction changes so it also rebuilds mid-stream.
        for order in [1usize, 2] {
            let integrals = unit_integrals(order);
            let n = integrals.nodes_per_element();
            let mut reference = KernelScratch::new(n);
            let mut blocked = KernelScratch::new(n);
            let omegas = [[0.48, 0.62, 0.6208], [-0.51, 0.62, -0.59], [0.9, 0.3, 0.31]];
            for (key, &omega) in omegas.iter().enumerate() {
                let upwind = boundary_upwind(&integrals, omega, 0.7);
                // Two "groups" per direction: the second call hits the cache.
                for g in 0..2 {
                    let sigma_t = 1.1 + 0.4 * g as f64;
                    let source: Vec<f64> = (0..n)
                        .map(|i| 0.25 + (i as f64) * 0.013 + g as f64)
                        .collect();
                    assemble(&integrals, omega, sigma_t, &source, &upwind, &mut reference);
                    assemble_blocked(
                        &integrals,
                        omega,
                        sigma_t,
                        &source,
                        &upwind,
                        key,
                        &mut blocked,
                    );
                    for i in 0..n {
                        for j in 0..n {
                            assert_eq!(
                                reference.matrix[(i, j)].to_bits(),
                                blocked.matrix[(i, j)].to_bits(),
                                "order {order}, key {key}, group {g}, entry ({i},{j})"
                            );
                        }
                        assert_eq!(
                            reference.rhs[i].to_bits(),
                            blocked.rhs[i].to_bits(),
                            "order {order}, key {key}, group {g}, rhs {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn engine_reference_f64_matches_the_free_function_bit_for_bit() {
        let integrals = unit_integrals(2);
        let n = integrals.nodes_per_element();
        let omega = [0.6, 0.58, 0.55];
        let source = vec![1.0; n];
        let upwind = boundary_upwind(&integrals, omega, 0.4);
        let solver = GaussSolver::new();
        let mut free = KernelScratch::new(n);
        assemble_solve(
            &integrals, omega, 1.3, &source, &upwind, &solver, false, &mut free,
        );
        for kind in KernelKind::all() {
            let engine = KernelEngine::new(kind, Precision::F64);
            let mut scratch = KernelScratch::new(n);
            engine.assemble_solve(
                7,
                &integrals,
                omega,
                1.3,
                &source,
                &upwind,
                &solver,
                false,
                &mut scratch,
            );
            for i in 0..n {
                assert_eq!(
                    free.rhs[i].to_bits(),
                    scratch.rhs[i].to_bits(),
                    "{kind}: node {i}"
                );
            }
        }
    }

    #[test]
    fn mixed_precision_solution_stays_within_single_precision_tolerance() {
        // The f32 solve must land within a few f32 ulps of the f64 flux
        // on a well-conditioned local system, for both kernels.
        let integrals = unit_integrals(2);
        let n = integrals.nodes_per_element();
        let omega = [0.48, 0.62, 0.6208];
        let sigma_t = 1.7;
        let c = 2.5;
        let source = vec![sigma_t * c; n];
        let upwind = boundary_upwind(&integrals, omega, c);
        let solver = GaussSolver::new();
        let mut exact = KernelScratch::new(n);
        assemble_solve(
            &integrals, omega, sigma_t, &source, &upwind, &solver, false, &mut exact,
        );
        for kind in KernelKind::all() {
            let engine = KernelEngine::new(kind, Precision::Mixed);
            assert_eq!(engine.precision(), Precision::Mixed);
            let mut scratch = KernelScratch::new(n);
            engine.assemble_solve(
                0,
                &integrals,
                omega,
                sigma_t,
                &source,
                &upwind,
                &solver,
                false,
                &mut scratch,
            );
            for i in 0..n {
                let rel = (scratch.rhs[i] - exact.rhs[i]).abs() / exact.rhs[i].abs();
                assert!(
                    rel < 1e-5,
                    "{kind}: node {i} relative error {rel} exceeds f32 tolerance"
                );
                // And the result really is f32-representable storage.
                assert_eq!(scratch.rhs[i], scratch.rhs[i] as f32 as f64);
            }
        }
    }

    #[test]
    fn upwind_neighbor_mapping_uses_neighbor_face_nodes() {
        // Give the fake neighbour a flux that varies across its face and
        // check the kernel picks up the values at the matching positions:
        // feeding the *same* values through a boundary-style constant would
        // change the answer, so a mismatch in the mapping is detectable.
        let order = 1;
        let integrals = unit_integrals(order);
        let n = integrals.nodes_per_element();
        let omega = [0.9, 0.3, 0.31];
        let sigma_t = 1.0;
        let source = vec![0.0; n];

        // Upwind only through the x- face; neighbour flux varies with y, z.
        let neighbor_face_nodes = face_node_indices(Face::XPlus, order);
        let mut neighbor_psi = vec![0.0; n];
        for (m, &idx) in neighbor_face_nodes.iter().enumerate() {
            neighbor_psi[idx] = 1.0 + m as f64;
        }
        let upwind = vec![UpwindFace {
            face: Face::XMinus.index(),
            source: UpwindSource::Interior {
                neighbor_psi: &neighbor_psi,
                neighbor_face_nodes: &neighbor_face_nodes,
            },
        }];
        let mut scratch = KernelScratch::new(n);
        let solver = GaussSolver::new();
        assemble_solve(
            &integrals,
            omega,
            sigma_t,
            &source,
            &upwind,
            &solver,
            false,
            &mut scratch,
        );
        // The incoming flux increases with the face-node index, i.e. with
        // y and z; the downstream solution must preserve that ordering at
        // the inflow-face nodes.
        let my_face_nodes = face_node_indices(Face::XMinus, order);
        let vals: Vec<f64> = my_face_nodes.iter().map(|&i| scratch.rhs[i]).collect();
        assert!(vals.windows(2).all(|w| w[1] > w[0]), "{vals:?}");
        assert!(vals.iter().all(|&v| v > 0.0));
    }
}
