//! Artificial multigroup problem data: cross sections, materials and the
//! fixed source.
//!
//! SNAP "uses artificial problem data which is auto-generated based on
//! input parameters" (§I of the paper) and UnSNAP "uses the same artificial
//! data, source calculation and iteration structure as SNAP" (§III).  The
//! experiments in the paper all select *Source and Material "Option 1"*: a
//! single homogeneous material filling the whole domain with a uniform,
//! isotropic, group-independent fixed source.
//!
//! The data generated here follows the same recipe SNAP uses for its
//! auto-generated cross sections: a base total cross section of 1.0 in the
//! first group, increasing by 0.01 per group; scattering split between
//! within-group and down-scatter so the medium is sub-critical; and a unit
//! fixed source.  Absolute values are not important for a performance
//! proxy — what matters is that the shapes and couplings of the real data
//! structures are present (a full group-to-group scattering matrix, a
//! per-cell material index, per-group totals).

use serde::{Deserialize, Serialize};

/// Which artificial material layout fills the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MaterialOption {
    /// "Option 1": one homogeneous material everywhere (the configuration
    /// used by every experiment in the paper).
    #[default]
    Option1,
    /// "Option 2": a second, denser material in the central half of the
    /// domain (SNAP's layered-material variant), kept so the mini-app can
    /// exercise per-cell material lookup.
    Option2,
}

impl MaterialOption {
    /// Stable wire label (`option1`/`option2`), round-tripped by
    /// [`FromStr`](std::str::FromStr) like the workspace's other enum
    /// knobs.
    pub fn label(&self) -> &'static str {
        match self {
            MaterialOption::Option1 => "option1",
            MaterialOption::Option2 => "option2",
        }
    }
}

impl std::fmt::Display for MaterialOption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for MaterialOption {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "option1" | "1" | "homogeneous" => Ok(MaterialOption::Option1),
            "option2" | "2" | "layered" => Ok(MaterialOption::Option2),
            other => Err(format!("unknown material option '{other}'")),
        }
    }
}

/// Which artificial fixed-source layout drives the problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SourceOption {
    /// "Option 1": a uniform unit source everywhere, all groups.
    #[default]
    Option1,
    /// "Option 2": a source only in the central half of the domain.
    Option2,
}

impl SourceOption {
    /// Stable wire label (`option1`/`option2`), round-tripped by
    /// [`FromStr`](std::str::FromStr) like the workspace's other enum
    /// knobs.
    pub fn label(&self) -> &'static str {
        match self {
            SourceOption::Option1 => "option1",
            SourceOption::Option2 => "option2",
        }
    }
}

impl std::fmt::Display for SourceOption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SourceOption {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "option1" | "1" | "uniform" => Ok(SourceOption::Option1),
            "option2" | "2" | "central" => Ok(SourceOption::Option2),
            other => Err(format!("unknown source option '{other}'")),
        }
    }
}

/// Multigroup cross sections for a set of materials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossSections {
    num_groups: usize,
    num_materials: usize,
    /// `total[mat * G + g]`: total cross section σ_t.
    total: Vec<f64>,
    /// `scatter[mat * G * G + g_from * G + g_to]`: isotropic scattering
    /// matrix σ_s(g' → g).
    scatter: Vec<f64>,
}

impl CrossSections {
    /// Generate the SNAP-style artificial cross sections for `num_groups`
    /// energy groups and `num_materials` materials.
    ///
    /// Material `m` has `σ_t(g) = (1 + 0.5 m) + 0.01 g`.  Scattering is
    /// purely down-scatter plus within-group: 50% of σ_t stays in group,
    /// 20% leaves to the next two lower-energy groups (when they exist),
    /// giving a scattering ratio safely below one so the source iteration
    /// converges.
    pub fn generate(num_groups: usize, num_materials: usize) -> Self {
        assert!(num_groups > 0 && num_materials > 0);
        let g = num_groups;
        let mut total = vec![0.0; num_materials * g];
        let mut scatter = vec![0.0; num_materials * g * g];
        for m in 0..num_materials {
            for gi in 0..g {
                let sigma_t = 1.0 + 0.5 * m as f64 + 0.01 * gi as f64;
                total[m * g + gi] = sigma_t;
                // Within-group scattering.
                scatter[m * g * g + gi * g + gi] = 0.5 * sigma_t;
                // Down-scatter to the next two groups.
                if gi + 1 < g {
                    scatter[m * g * g + gi * g + (gi + 1)] = 0.15 * sigma_t;
                }
                if gi + 2 < g {
                    scatter[m * g * g + gi * g + (gi + 2)] = 0.05 * sigma_t;
                }
            }
        }
        Self {
            num_groups: g,
            num_materials,
            total,
            scatter,
        }
    }

    /// Generate cross sections with a prescribed within-group scattering
    /// ratio `c`.
    ///
    /// Totals follow the same recipe as [`CrossSections::generate`], but
    /// the scattering matrix is purely within-group with
    /// `σ_s(g → g) = c · σ_t(g)`, so the inner (source) iteration
    /// contracts at exactly rate `c` in every group.  This is the knob
    /// for building scattering-dominated scenarios (`c ≥ 0.9`) where
    /// plain source iteration stalls and the Krylov strategies earn
    /// their keep.
    ///
    /// # Panics
    /// If `c` is outside `(0, 1]` (matching `Problem::validate`: `c = 1`
    /// is the conservative-medium limit, `c ≤ 0` is not scattering).
    pub fn with_scattering_ratio(num_groups: usize, num_materials: usize, c: f64) -> Self {
        assert!(num_groups > 0 && num_materials > 0);
        assert!(
            c > 0.0 && c <= 1.0,
            "scattering ratio must lie in (0, 1], got {c}"
        );
        let g = num_groups;
        let mut total = vec![0.0; num_materials * g];
        let mut scatter = vec![0.0; num_materials * g * g];
        for m in 0..num_materials {
            for gi in 0..g {
                let sigma_t = 1.0 + 0.5 * m as f64 + 0.01 * gi as f64;
                total[m * g + gi] = sigma_t;
                scatter[m * g * g + gi * g + gi] = c * sigma_t;
            }
        }
        Self {
            num_groups: g,
            num_materials,
            total,
            scatter,
        }
    }

    /// Generate cross sections with a prescribed scattering ratio `c`
    /// *and* a full group-to-group matrix that includes upscatter.
    ///
    /// Totals follow the same recipe as [`CrossSections::generate`].
    /// Each group keeps `(1 − u) · c · σ_t(g)` within group and spreads
    /// the remaining `u · c · σ_t(g)` *equally over every other group* —
    /// both lower- and higher-energy, so the matrix has nonzero entries
    /// on both sides of the diagonal.  The row sum is exactly
    /// `c · σ_t(g)`, preserving the scattering ratio of
    /// [`CrossSections::with_scattering_ratio`]; what changes is the
    /// *coupling structure*: with upscatter, no group ordering makes the
    /// matrix triangular, so the outer (group-coupling) iteration has to
    /// do real work instead of converging in one downstream pass.
    ///
    /// # Panics
    /// If `c` is outside `(0, 1]`, `u` is outside `(0, 1)`, or
    /// `num_groups < 2` (upscatter needs another group to scatter up
    /// into) — matching `Problem::validate`.
    pub fn with_upscatter(num_groups: usize, num_materials: usize, c: f64, u: f64) -> Self {
        assert!(num_groups >= 2, "upscatter needs at least 2 groups");
        assert!(num_materials > 0);
        assert!(
            c > 0.0 && c <= 1.0,
            "scattering ratio must lie in (0, 1], got {c}"
        );
        assert!(
            u > 0.0 && u < 1.0,
            "upscatter ratio must lie in (0, 1), got {u}"
        );
        let g = num_groups;
        let mut total = vec![0.0; num_materials * g];
        let mut scatter = vec![0.0; num_materials * g * g];
        let spread = u / (g - 1) as f64;
        for m in 0..num_materials {
            for gi in 0..g {
                let sigma_t = 1.0 + 0.5 * m as f64 + 0.01 * gi as f64;
                total[m * g + gi] = sigma_t;
                for gt in 0..g {
                    scatter[m * g * g + gi * g + gt] = if gt == gi {
                        (1.0 - u) * c * sigma_t
                    } else {
                        spread * c * sigma_t
                    };
                }
            }
        }
        Self {
            num_groups: g,
            num_materials,
            total,
            scatter,
        }
    }

    /// Number of energy groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Number of materials.
    pub fn num_materials(&self) -> usize {
        self.num_materials
    }

    /// Total cross section σ_t of `material` in group `g`.
    #[inline]
    pub fn total(&self, material: usize, g: usize) -> f64 {
        self.total[material * self.num_groups + g]
    }

    /// Isotropic scattering cross section σ_s from group `g_from` into
    /// group `g_to` for `material`.
    #[inline]
    pub fn scatter(&self, material: usize, g_from: usize, g_to: usize) -> f64 {
        self.scatter[material * self.num_groups * self.num_groups + g_from * self.num_groups + g_to]
    }

    /// Total out-scattering from group `g` (row sum of the scattering
    /// matrix).
    pub fn scatter_out(&self, material: usize, g: usize) -> f64 {
        (0..self.num_groups)
            .map(|g_to| self.scatter(material, g, g_to))
            .sum()
    }

    /// The scattering ratio `c = Σ_g' σ_s(g → g') / σ_t(g)`; must be < 1
    /// for the source iteration to converge on an infinite medium.
    pub fn scattering_ratio(&self, material: usize, g: usize) -> f64 {
        self.scatter_out(material, g) / self.total(material, g)
    }
}

/// The per-cell material map and fixed source of an UnSNAP problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemData {
    /// Cross sections for every material present.
    pub xs: CrossSections,
    /// Material index of every cell.
    pub material_of_cell: Vec<usize>,
    /// Fixed source density of every cell (group-independent, isotropic).
    pub fixed_source_of_cell: Vec<f64>,
}

impl ProblemData {
    /// Build the problem data for a mesh of `num_cells` cells whose
    /// centroids are given by `centroid`, using the selected material and
    /// source options.  `domain_extent` is the physical size of the domain
    /// (used to locate the "central half" of the Option-2 layouts).
    pub fn generate(
        num_cells: usize,
        centroid: impl Fn(usize) -> [f64; 3],
        domain_extent: [f64; 3],
        num_groups: usize,
        material: MaterialOption,
        source: SourceOption,
    ) -> Self {
        let num_materials = match material {
            MaterialOption::Option1 => 1,
            MaterialOption::Option2 => 2,
        };
        let xs = CrossSections::generate(num_groups, num_materials);

        let in_centre = |c: [f64; 3]| {
            (0..3).all(|d| {
                let lo = 0.25 * domain_extent[d];
                let hi = 0.75 * domain_extent[d];
                c[d] >= lo && c[d] <= hi
            })
        };

        let mut material_of_cell = Vec::with_capacity(num_cells);
        let mut fixed_source_of_cell = Vec::with_capacity(num_cells);
        for cell in 0..num_cells {
            let c = centroid(cell);
            let mat = match material {
                MaterialOption::Option1 => 0,
                MaterialOption::Option2 => usize::from(in_centre(c)),
            };
            let q = match source {
                SourceOption::Option1 => 1.0,
                SourceOption::Option2 => {
                    if in_centre(c) {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            material_of_cell.push(mat);
            fixed_source_of_cell.push(q);
        }

        Self {
            xs,
            material_of_cell,
            fixed_source_of_cell,
        }
    }

    /// Material index of a cell.
    #[inline]
    pub fn material(&self, cell: usize) -> usize {
        self.material_of_cell[cell]
    }

    /// Fixed source density of a cell.
    #[inline]
    pub fn fixed_source(&self, cell: usize) -> f64 {
        self.fixed_source_of_cell[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sizes() {
        let xs = CrossSections::generate(16, 2);
        assert_eq!(xs.num_groups(), 16);
        assert_eq!(xs.num_materials(), 2);
    }

    #[test]
    fn totals_increase_with_group_and_material() {
        let xs = CrossSections::generate(8, 2);
        assert!((xs.total(0, 0) - 1.0).abs() < 1e-15);
        assert!(xs.total(0, 7) > xs.total(0, 0));
        assert!(xs.total(1, 0) > xs.total(0, 0));
    }

    #[test]
    fn scattering_ratio_below_one_everywhere() {
        let xs = CrossSections::generate(64, 2);
        for m in 0..2 {
            for g in 0..64 {
                let c = xs.scattering_ratio(m, g);
                assert!(c > 0.0 && c < 1.0, "material {m} group {g}: c = {c}");
            }
        }
    }

    #[test]
    fn scattering_is_within_group_plus_downscatter_only() {
        let xs = CrossSections::generate(6, 1);
        for g_from in 0..6 {
            for g_to in 0..6 {
                let s = xs.scatter(0, g_from, g_to);
                if g_to < g_from || g_to > g_from + 2 {
                    assert_eq!(s, 0.0, "unexpected scattering {g_from}->{g_to}");
                } else {
                    assert!(s > 0.0);
                }
            }
        }
        // Last group has no down-scatter targets beyond itself.
        assert_eq!(xs.scatter_out(0, 5), xs.scatter(0, 5, 5));
    }

    #[test]
    fn upscatter_preserves_the_row_sum_and_fills_both_triangles() {
        let (c, u) = (0.9, 0.2);
        let xs = CrossSections::with_upscatter(4, 2, c, u);
        for m in 0..2 {
            for g in 0..4 {
                // Row sum is exactly c · σ_t: the scattering ratio the
                // within-group recipe promises, now split across groups.
                assert!((xs.scattering_ratio(m, g) - c).abs() < 1e-12);
                // Every off-diagonal entry (including the upscatter
                // half below the diagonal) is present and equal.
                let spread = u / 3.0 * c * xs.total(m, g);
                for gt in 0..4 {
                    let s = xs.scatter(m, g, gt);
                    if gt == g {
                        assert!((s - (1.0 - u) * c * xs.total(m, g)).abs() < 1e-12);
                    } else {
                        assert!((s - spread).abs() < 1e-12, "{g}->{gt}");
                    }
                }
            }
        }
        // Genuine upscatter: energy flows from the lowest group back up.
        assert!(xs.scatter(0, 3, 0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 groups")]
    fn upscatter_rejects_a_single_group() {
        CrossSections::with_upscatter(1, 1, 0.9, 0.2);
    }

    #[test]
    fn option1_is_homogeneous_unit_source() {
        let data = ProblemData::generate(
            27,
            |_| [0.5, 0.5, 0.5],
            [1.0, 1.0, 1.0],
            4,
            MaterialOption::Option1,
            SourceOption::Option1,
        );
        assert!(data.material_of_cell.iter().all(|&m| m == 0));
        assert!(data.fixed_source_of_cell.iter().all(|&q| q == 1.0));
        assert_eq!(data.xs.num_materials(), 1);
    }

    #[test]
    fn option2_marks_central_cells() {
        // Cells along the x axis at y = z = 0.5: only those with
        // 0.25 <= x <= 0.75 are central.
        let centroids = [[0.1, 0.5, 0.5], [0.5, 0.5, 0.5], [0.9, 0.5, 0.5]];
        let data = ProblemData::generate(
            3,
            |c| centroids[c],
            [1.0, 1.0, 1.0],
            2,
            MaterialOption::Option2,
            SourceOption::Option2,
        );
        assert_eq!(data.material_of_cell, vec![0, 1, 0]);
        assert_eq!(data.fixed_source_of_cell, vec![0.0, 1.0, 0.0]);
        assert_eq!(data.material(1), 1);
        assert_eq!(data.fixed_source(0), 0.0);
    }

    #[test]
    fn defaults_are_option1() {
        assert_eq!(MaterialOption::default(), MaterialOption::Option1);
        assert_eq!(SourceOption::default(), SourceOption::Option1);
    }
}
