//! Problem definitions and the paper's experiment presets.
//!
//! A [`Problem`] gathers every input parameter of an UnSNAP run: the mesh
//! extents and twist, the angular and energy resolution, the finite-element
//! order, the iteration counts, the local dense-solver back end, and the
//! concurrency scheme used by the sweep.  The presets reproduce the two
//! problem configurations of §IV of the paper (the loop-ordering study of
//! Figures 3/4 and the solver comparison of Table II), both at their full
//! published size and at a scaled-down size suitable for laptops and CI.

use serde::{Deserialize, Serialize};

use unsnap_linalg::SolverKind;
use unsnap_mesh::boundary::DomainBoundaries;
use unsnap_mesh::{StructuredGrid, UnstructuredMesh};
use unsnap_sweep::{ConcurrencyScheme, LoopOrder, ThreadedLoops};

use crate::data::{MaterialOption, SourceOption};
use crate::error::{Error, Result};
use crate::kernel::KernelKind;
use crate::layout::Precision;
use crate::strategy::{AcceleratorKind, StrategyKind};

/// Full description of an UnSNAP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z.
    pub nz: usize,
    /// Domain length along x.
    pub lx: f64,
    /// Domain length along y.
    pub ly: f64,
    /// Domain length along z.
    pub lz: f64,
    /// Maximum mesh twist angle in radians (the paper uses up to 0.001).
    pub twist: f64,
    /// Lagrange element order (1 = linear, 3 = cubic, …).
    pub element_order: usize,
    /// Angles per octant of the Sn quadrature.
    pub angles_per_octant: usize,
    /// Number of energy groups.
    pub num_groups: usize,
    /// Artificial material layout.
    pub material: MaterialOption,
    /// Artificial fixed-source layout.
    pub source: SourceOption,
    /// Boundary conditions on the six domain faces.
    pub boundaries: DomainBoundaries,
    /// Number of inner (source) iterations per outer iteration.
    pub inner_iterations: usize,
    /// Number of outer (group-coupling) iterations.
    pub outer_iterations: usize,
    /// Pointwise scalar-flux convergence tolerance.  The paper's timing
    /// runs deliberately use too few iterations to converge (for constant
    /// iteration counts); set a tolerance of 0 to force every requested
    /// iteration to run.
    pub convergence_tolerance: f64,
    /// Local dense solver back end (GE, reference LU or the MKL stand-in).
    pub solver: SolverKind,
    /// Inner-iteration strategy: classic source iteration or the
    /// sweep-preconditioned Krylov solve.
    pub strategy: StrategyKind,
    /// GMRES restart length `m` (only read by the Krylov strategies).
    pub gmres_restart: usize,
    /// Optional low-order accelerator for the Krylov strategies: with
    /// [`AcceleratorKind::Dsa`], `SweepGmres` solves the
    /// DSA-preconditioned fixed point (each operator application adds a
    /// low-order diffusion correction).  The dedicated
    /// [`StrategyKind::DsaSourceIteration`] strategy always applies DSA
    /// regardless of this knob; plain `SourceIteration` ignores — and
    /// the builder rejects — a dangling accelerator selection.
    pub accelerator: AcceleratorKind,
    /// Relative residual target of the low-order DSA CG solve (read
    /// whenever a DSA correction runs).
    pub accel_cg_tolerance: f64,
    /// Iteration cap of the low-order DSA CG solve.
    pub accel_cg_iterations: usize,
    /// Dedicated per-rank Krylov budget for the distributed block-Jacobi
    /// driver: the iteration cap of *each rank's subdomain solve per
    /// halo exchange*.  `None` preserves the historical behaviour of
    /// capping both the halo loop and the per-exchange solve with
    /// [`Problem::inner_iterations`].
    pub subdomain_krylov_budget: Option<usize>,
    /// Optional override of the within-group scattering ratio `c`.
    /// `None` keeps the SNAP recipe (`c ≈ 0.5–0.7`); `Some(c)` replaces
    /// the scattering matrix with purely within-group scattering
    /// `σ_s(g → g) = c · σ_t(g)`, the knob for scattering-dominated
    /// scenarios where source iteration stalls.
    pub scattering_ratio: Option<f64>,
    /// Optional upscatter fraction `u` layered on top of
    /// [`Problem::scattering_ratio`] (and requiring it): each group keeps
    /// `(1 − u) · c · σ_t` within group and spreads `u · c · σ_t`
    /// equally over every *other* group, lower- and higher-energy alike.
    /// This makes the group-to-group scattering matrix irreducible — no
    /// group ordering is triangular — so the outer (group-coupling)
    /// iteration has to genuinely converge instead of resolving in one
    /// downstream pass.  Must lie in `(0, 1)` and needs at least two
    /// energy groups.
    pub upscatter_ratio: Option<f64>,
    /// Concurrency scheme for the sweep.
    pub scheme: ConcurrencyScheme,
    /// Number of worker threads for the solver's pool (`None` = the
    /// machine's available parallelism).  A width of 1 runs the sweep
    /// inline on the calling thread.  The `RAYON_NUM_THREADS` environment
    /// variable force-overrides whatever is requested here — the knob CI
    /// uses to replay the whole test suite at several widths — and every
    /// scheme except the angle-threaded ablation produces bit-for-bit
    /// identical physics regardless of the effective width.
    pub num_threads: Option<usize>,
    /// Precompute and store the per-element integrals (the paper's
    /// approach) or recompute them on the fly inside the kernel.
    pub precompute_integrals: bool,
    /// Record the time spent inside the linear solve separately from the
    /// assembly (adds a small timing overhead, as the paper notes).
    pub time_solve: bool,
    /// Which assemble kernel runs the per-cell hot loop: the scalar
    /// reference kernel or the SoA cache-blocked kernel.  Both produce
    /// bit-for-bit identical physics; the knob only changes speed.
    pub kernel: KernelKind,
    /// Storage/solve precision of the per-cell dense solves.  `Mixed`
    /// runs `f32` local solves inside `f64` outer iterations (changes
    /// the flux at single-precision level — see
    /// [`Precision`]).
    pub precision: Precision,
}

impl Problem {
    /// A tiny smoke-test problem (runs in milliseconds).
    pub fn tiny() -> Self {
        Self {
            nx: 3,
            ny: 3,
            nz: 3,
            lx: 1.0,
            ly: 1.0,
            lz: 1.0,
            twist: 0.001,
            element_order: 1,
            angles_per_octant: 2,
            num_groups: 2,
            material: MaterialOption::Option1,
            source: SourceOption::Option1,
            boundaries: DomainBoundaries::vacuum(),
            inner_iterations: 2,
            outer_iterations: 1,
            convergence_tolerance: 0.0,
            solver: SolverKind::GaussianElimination,
            strategy: StrategyKind::SourceIteration,
            gmres_restart: 20,
            accelerator: AcceleratorKind::None,
            accel_cg_tolerance: 1e-8,
            accel_cg_iterations: 200,
            subdomain_krylov_budget: None,
            scattering_ratio: None,
            upscatter_ratio: None,
            scheme: ConcurrencyScheme::serial(),
            num_threads: Some(1),
            precompute_integrals: true,
            time_solve: false,
            kernel: KernelKind::Reference,
            precision: Precision::F64,
        }
    }

    /// A small but representative problem used by the quickstart example.
    pub fn quickstart() -> Self {
        Self {
            nx: 6,
            ny: 6,
            nz: 6,
            angles_per_octant: 4,
            num_groups: 4,
            inner_iterations: 4,
            outer_iterations: 2,
            convergence_tolerance: 1e-6,
            scheme: ConcurrencyScheme::best(),
            num_threads: None,
            ..Self::tiny()
        }
    }

    /// The Figure 3 / Figure 4 problem of the paper:
    ///
    /// * 16 × 16 × 16 elements
    /// * 36 angles per octant with isotropic scattering
    /// * 64 energy groups, Source and Material "Option 1"
    /// * linear (Figure 3) or cubic (Figure 4) finite elements
    /// * mesh twisting of up to 0.001 radians
    /// * 5 inner and 1 outer iteration (not enough to converge — by design,
    ///   so every run does the same amount of work)
    pub fn figure3_full() -> Self {
        Self {
            nx: 16,
            ny: 16,
            nz: 16,
            element_order: 1,
            angles_per_octant: 36,
            num_groups: 64,
            twist: 0.001,
            inner_iterations: 5,
            outer_iterations: 1,
            convergence_tolerance: 0.0,
            scheme: ConcurrencyScheme::best(),
            num_threads: None,
            ..Self::tiny()
        }
    }

    /// Scaled-down Figure 3 problem for machines without 192 GB of memory:
    /// same shape (linear elements, many groups relative to angles), small
    /// enough to run in seconds.
    pub fn figure3_scaled() -> Self {
        Self {
            nx: 8,
            ny: 8,
            nz: 8,
            angles_per_octant: 6,
            num_groups: 16,
            ..Self::figure3_full()
        }
    }

    /// The Figure 4 problem: as Figure 3 but with cubic elements.
    pub fn figure4_full() -> Self {
        Self {
            element_order: 3,
            ..Self::figure3_full()
        }
    }

    /// Scaled-down Figure 4 problem (cubic elements).
    pub fn figure4_scaled() -> Self {
        Self {
            nx: 4,
            ny: 4,
            nz: 4,
            angles_per_octant: 4,
            num_groups: 8,
            element_order: 3,
            ..Self::figure3_full()
        }
    }

    /// The Table II problem of the paper:
    ///
    /// * 32 × 32 × 32 elements
    /// * 10 angles per octant with isotropic scattering
    /// * 16 energy groups, Source and Material "Option 1"
    /// * mesh twisting of up to 0.001 radians
    /// * 5 inner and 1 outer iteration
    /// * element order 1–4, hand-written GE vs the MKL stand-in
    pub fn table2_full(element_order: usize, solver: SolverKind) -> Self {
        Self {
            nx: 32,
            ny: 32,
            nz: 32,
            element_order,
            angles_per_octant: 10,
            num_groups: 16,
            twist: 0.001,
            inner_iterations: 5,
            outer_iterations: 1,
            convergence_tolerance: 0.0,
            solver,
            scheme: ConcurrencyScheme::serial(),
            num_threads: Some(1),
            time_solve: true,
            ..Self::tiny()
        }
    }

    /// Scaled-down Table II problem.
    pub fn table2_scaled(element_order: usize, solver: SolverKind) -> Self {
        Self {
            nx: 4,
            ny: 4,
            nz: 4,
            angles_per_octant: 2,
            num_groups: 4,
            inner_iterations: 2,
            ..Self::table2_full(element_order, solver)
        }
    }

    /// A diffusive (scattering-dominated) preset: the quickstart shape
    /// with the within-group scattering ratio pushed to `c = 0.99` and
    /// the DSA-accelerated source-iteration strategy selected.  Plain
    /// source iteration contracts its error by only `c` per sweep, so
    /// this is the regime the low-order diffusion correction of
    /// `unsnap-accel` exists for; the preset gives servers, tests and
    /// bench bins a shared entry into it.
    pub fn dsa_regime() -> Self {
        Self {
            inner_iterations: 60,
            outer_iterations: 4,
            convergence_tolerance: 1e-6,
            strategy: StrategyKind::DsaSourceIteration,
            scattering_ratio: Some(0.99),
            ..Self::quickstart()
        }
    }

    /// The names [`Problem::from_name`] accepts, in catalogue order.
    ///
    /// The bare figure/table names resolve to the *scaled* presets (the
    /// CI-sized problems); the `-full` variants select the published
    /// problem sizes.
    pub fn registry_names() -> &'static [&'static str] {
        &[
            "tiny",
            "quickstart",
            "figure3",
            "figure3-full",
            "figure4",
            "figure4-full",
            "table2",
            "table2-full",
            "dsa-regime",
        ]
    }

    /// Look a preset up by name — the single catalogue the server wire
    /// format, the tests and the bench bins draw from, so "the tiny
    /// problem" means the same configuration everywhere.
    ///
    /// Names are case-insensitive and trimmed; an unknown name is an
    /// [`Error::InvalidProblem`] on the `problem` field listing the
    /// known catalogue.  `table2` selects order-2 elements on the MKL
    /// stand-in back end (the mid-table configuration).
    pub fn from_name(name: &str) -> Result<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "tiny" => Ok(Self::tiny()),
            "quickstart" => Ok(Self::quickstart()),
            "figure3" => Ok(Self::figure3_scaled()),
            "figure3-full" => Ok(Self::figure3_full()),
            "figure4" => Ok(Self::figure4_scaled()),
            "figure4-full" => Ok(Self::figure4_full()),
            "table2" => Ok(Self::table2_scaled(2, SolverKind::Mkl)),
            "table2-full" => Ok(Self::table2_full(2, SolverKind::Mkl)),
            "dsa-regime" => Ok(Self::dsa_regime()),
            other => Err(Error::invalid_problem(
                "problem",
                format!(
                    "unknown problem name '{other}'; known names: {}",
                    Self::registry_names().join(", ")
                ),
            )),
        }
    }

    /// A deterministic content hash of the full configuration: FNV-1a
    /// (64-bit) over the canonical wire serialisation
    /// ([`wire::problem_to_json`](crate::wire::problem_to_json)), which
    /// writes every field in declared order with shortest-round-trip
    /// floats.  Two problems hash equal **iff** they are field-for-field
    /// equal (modulo the 64-bit collision bound), so the hash is usable
    /// as a cache key for solve results; it is stable across processes
    /// and platforms because nothing machine-dependent enters the
    /// serialisation.
    pub fn canonical_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let canonical = crate::wire::problem_to_json(self);
        let mut hash = FNV_OFFSET;
        for byte in canonical.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }

    /// Override the concurrency scheme.
    pub fn with_scheme(mut self, scheme: ConcurrencyScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Override the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.num_threads = Some(threads);
        self
    }

    /// Override the local solver back end.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Override the inner-iteration strategy.
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the GMRES restart length.
    pub fn with_gmres_restart(mut self, restart: usize) -> Self {
        self.gmres_restart = restart;
        self
    }

    /// Override the within-group scattering ratio (see
    /// [`Problem::scattering_ratio`]).
    pub fn with_scattering_ratio(mut self, c: f64) -> Self {
        self.scattering_ratio = Some(c);
        self
    }

    /// Builder-style setter for the upscatter fraction (see
    /// [`Problem::upscatter_ratio`]).  Requires a scattering-ratio
    /// override to layer on; `validate` rejects a dangling upscatter.
    pub fn with_upscatter_ratio(mut self, u: f64) -> Self {
        self.upscatter_ratio = Some(u);
        self
    }

    /// Override the low-order accelerator selection.
    pub fn with_accelerator(mut self, accelerator: AcceleratorKind) -> Self {
        self.accelerator = accelerator;
        self
    }

    /// Override the low-order DSA CG tolerance and iteration cap.
    pub fn with_accel_cg(mut self, tolerance: f64, max_iterations: usize) -> Self {
        self.accel_cg_tolerance = tolerance;
        self.accel_cg_iterations = max_iterations;
        self
    }

    /// Override the dedicated per-rank subdomain Krylov budget (see
    /// [`Problem::subdomain_krylov_budget`]).
    pub fn with_subdomain_krylov_budget(mut self, budget: usize) -> Self {
        self.subdomain_krylov_budget = Some(budget);
        self
    }

    /// Override the element order.
    pub fn with_order(mut self, order: usize) -> Self {
        self.element_order = order;
        self
    }

    /// Override the mesh resolution (cubic).
    pub fn with_mesh(mut self, n: usize) -> Self {
        self.nx = n;
        self.ny = n;
        self.nz = n;
        self
    }

    /// Override angles per octant and group count.
    pub fn with_phase_space(mut self, angles_per_octant: usize, num_groups: usize) -> Self {
        self.angles_per_octant = angles_per_octant;
        self.num_groups = num_groups;
        self
    }

    /// Enable/disable the separate solve timer.
    pub fn with_solve_timing(mut self, on: bool) -> Self {
        self.time_solve = on;
        self
    }

    /// Enable/disable precomputed per-element integrals.
    pub fn with_precomputed_integrals(mut self, on: bool) -> Self {
        self.precompute_integrals = on;
        self
    }

    /// Override the assemble kernel (see [`Problem::kernel`]).
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Override the solve precision (see [`Problem::precision`]).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The structured grid the mesh is derived from.
    pub fn grid(&self) -> StructuredGrid {
        StructuredGrid::new(self.nx, self.ny, self.nz, self.lx, self.ly, self.lz)
    }

    /// Build the (twisted) unstructured mesh for this problem.
    pub fn build_mesh(&self) -> UnstructuredMesh {
        UnstructuredMesh::from_structured(&self.grid(), self.twist)
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Nodes per element, `(order + 1)³`.
    pub fn nodes_per_element(&self) -> usize {
        (self.element_order + 1).pow(3)
    }

    /// Total number of angles (8 × angles per octant).
    pub fn num_angles(&self) -> usize {
        8 * self.angles_per_octant
    }

    /// Number of angular-flux unknowns
    /// (nodes × cells × groups × angles) — the quantity that drives the
    /// "enormous memory footprint" discussion of §II-C.
    pub fn angular_flux_unknowns(&self) -> usize {
        self.nodes_per_element() * self.num_cells() * self.num_groups * self.num_angles()
    }

    /// Estimated angular-flux storage in bytes (FP64).
    pub fn angular_flux_bytes(&self) -> usize {
        self.angular_flux_unknowns() * std::mem::size_of::<f64>()
    }

    /// Basic sanity checks on the parameters.
    ///
    /// Each failed check reports the offending field through
    /// [`Error::InvalidProblem`], so callers (and tests) can match on the
    /// rejection class instead of parsing a message.  Cross-field
    /// invariants that only a construction-time check can enforce live in
    /// [`ProblemBuilder::build`](crate::builder::ProblemBuilder::build),
    /// which also runs these checks.
    pub fn validate(&self) -> Result<()> {
        for (field, n) in [("nx", self.nx), ("ny", self.ny), ("nz", self.nz)] {
            if n == 0 {
                return Err(Error::invalid_problem(
                    field,
                    format!(
                        "mesh must have at least one cell in every direction, got {}x{}x{}",
                        self.nx, self.ny, self.nz
                    ),
                ));
            }
        }
        for (field, l) in [("lx", self.lx), ("ly", self.ly), ("lz", self.lz)] {
            if l <= 0.0 {
                return Err(Error::invalid_problem(
                    field,
                    format!(
                        "domain extents must be positive, got {}x{}x{}",
                        self.lx, self.ly, self.lz
                    ),
                ));
            }
        }
        if self.element_order == 0 {
            return Err(Error::invalid_problem(
                "element_order",
                "element order must be at least 1",
            ));
        }
        if self.angles_per_octant == 0 {
            return Err(Error::invalid_problem(
                "angles_per_octant",
                "need at least one angle per octant",
            ));
        }
        if self.num_groups == 0 {
            return Err(Error::invalid_problem(
                "num_groups",
                "need at least one energy group",
            ));
        }
        if self.inner_iterations == 0 {
            return Err(Error::invalid_problem(
                "inner_iterations",
                "iteration counts must be at least 1",
            ));
        }
        if self.outer_iterations == 0 {
            return Err(Error::invalid_problem(
                "outer_iterations",
                "iteration counts must be at least 1",
            ));
        }
        if let Some(0) = self.num_threads {
            return Err(Error::invalid_problem(
                "num_threads",
                "thread count must be at least 1",
            ));
        }
        if self.twist < 0.0 {
            return Err(Error::invalid_problem(
                "twist",
                "twist angle must be non-negative",
            ));
        }
        if self.gmres_restart == 0 {
            return Err(Error::invalid_problem(
                "gmres_restart",
                "GMRES restart length must be at least 1",
            ));
        }
        if !(self.accel_cg_tolerance > 0.0 && self.accel_cg_tolerance.is_finite()) {
            return Err(Error::invalid_problem(
                "accel_cg_tolerance",
                format!(
                    "DSA CG tolerance must be finite and positive, got {}",
                    self.accel_cg_tolerance
                ),
            ));
        }
        if self.accel_cg_iterations == 0 {
            return Err(Error::invalid_problem(
                "accel_cg_iterations",
                "DSA CG iteration cap must be at least 1",
            ));
        }
        if let Some(0) = self.subdomain_krylov_budget {
            return Err(Error::invalid_problem(
                "subdomain_krylov_budget",
                "per-rank Krylov budget must be at least 1",
            ));
        }
        if let Some(c) = self.scattering_ratio {
            if !(c > 0.0 && c <= 1.0) {
                return Err(Error::invalid_problem(
                    "scattering_ratio",
                    format!("scattering ratio must lie in (0, 1], got {c}"),
                ));
            }
        }
        if let Some(u) = self.upscatter_ratio {
            if self.scattering_ratio.is_none() {
                return Err(Error::invalid_problem(
                    "upscatter_ratio",
                    "upscatter needs a scattering_ratio override to split; set one",
                ));
            }
            if self.num_groups < 2 {
                return Err(Error::invalid_problem(
                    "upscatter_ratio",
                    "upscatter needs at least 2 energy groups to scatter up into",
                ));
            }
            if !(u > 0.0 && u < 1.0) {
                return Err(Error::invalid_problem(
                    "upscatter_ratio",
                    format!("upscatter fraction must lie in (0, 1), got {u}"),
                ));
            }
        }
        if self.accelerator == AcceleratorKind::Dsa
            && self.strategy == StrategyKind::SourceIteration
        {
            return Err(Error::invalid_problem(
                "accelerator",
                "plain source iteration never applies the DSA accelerator; select the \
                 dsa-si strategy (StrategyKind::DsaSourceIteration) or the gmres strategy \
                 to make the accelerator effective",
            ));
        }
        Ok(())
    }
}

impl Default for Problem {
    fn default() -> Self {
        Self::quickstart()
    }
}

/// Convenience constructor for the scheme that threads only over angles
/// (the ablation of §IV-A.3).
pub fn angle_threaded_scheme() -> ConcurrencyScheme {
    ConcurrencyScheme::new(LoopOrder::ElementThenGroup, ThreadedLoops::Angles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [
            Problem::tiny(),
            Problem::quickstart(),
            Problem::figure3_full(),
            Problem::figure3_scaled(),
            Problem::figure4_full(),
            Problem::figure4_scaled(),
            Problem::table2_full(3, SolverKind::Mkl),
            Problem::table2_scaled(2, SolverKind::GaussianElimination),
        ] {
            assert!(p.validate().is_ok(), "{p:?}");
        }
    }

    #[test]
    fn figure3_matches_paper_parameters() {
        let p = Problem::figure3_full();
        assert_eq!((p.nx, p.ny, p.nz), (16, 16, 16));
        assert_eq!(p.angles_per_octant, 36);
        assert_eq!(p.num_groups, 64);
        assert_eq!(p.element_order, 1);
        assert!(p.twist <= 0.001);
        assert_eq!(p.inner_iterations, 5);
        assert_eq!(p.outer_iterations, 1);
    }

    #[test]
    fn figure4_is_cubic() {
        assert_eq!(Problem::figure4_full().element_order, 3);
        assert_eq!(Problem::figure4_scaled().element_order, 3);
    }

    #[test]
    fn table2_matches_paper_parameters() {
        let p = Problem::table2_full(4, SolverKind::Mkl);
        assert_eq!((p.nx, p.ny, p.nz), (32, 32, 32));
        assert_eq!(p.angles_per_octant, 10);
        assert_eq!(p.num_groups, 16);
        assert_eq!(p.element_order, 4);
        assert_eq!(p.solver, SolverKind::Mkl);
        assert!(p.time_solve);
    }

    #[test]
    fn angular_flux_footprint_scales_with_order() {
        // Linear FEM stores 8× the unknowns of a one-value-per-cell FD
        // method on the same mesh (§II-C of the paper).
        let p1 = Problem::tiny();
        let fd_unknowns = p1.num_cells() * p1.num_groups * p1.num_angles();
        assert_eq!(p1.angular_flux_unknowns(), 8 * fd_unknowns);
        let p3 = Problem::tiny().with_order(3);
        assert_eq!(p3.angular_flux_unknowns(), 64 * fd_unknowns);
        assert_eq!(p1.angular_flux_bytes(), p1.angular_flux_unknowns() * 8);
    }

    #[test]
    fn builders_apply() {
        let p = Problem::tiny()
            .with_mesh(5)
            .with_order(2)
            .with_phase_space(3, 7)
            .with_threads(2)
            .with_solver(SolverKind::Mkl)
            .with_scheme(ConcurrencyScheme::best())
            .with_solve_timing(true)
            .with_precomputed_integrals(false);
        assert_eq!(p.num_cells(), 125);
        assert_eq!(p.nodes_per_element(), 27);
        assert_eq!(p.num_angles(), 24);
        assert_eq!(p.num_groups, 7);
        assert_eq!(p.num_threads, Some(2));
        assert_eq!(p.solver, SolverKind::Mkl);
        assert!(p.time_solve);
        assert!(!p.precompute_integrals);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(Problem {
            nx: 0,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            lx: -1.0,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            element_order: 0,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            angles_per_octant: 0,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            num_groups: 0,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            inner_iterations: 0,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            num_threads: Some(0),
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            twist: -0.1,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            accel_cg_tolerance: 0.0,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            accel_cg_tolerance: f64::NAN,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            accel_cg_iterations: 0,
            ..Problem::tiny()
        }
        .validate()
        .is_err());
        assert!(Problem {
            subdomain_krylov_budget: Some(0),
            ..Problem::tiny()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn kernel_and_precision_builders_apply() {
        let p = Problem::tiny()
            .with_kernel(KernelKind::Blocked)
            .with_precision(Precision::Mixed);
        assert_eq!(p.kernel, KernelKind::Blocked);
        assert_eq!(p.precision, Precision::Mixed);
        assert!(p.validate().is_ok());
        // Defaults preserve the seed behaviour.
        assert_eq!(Problem::tiny().kernel, KernelKind::Reference);
        assert_eq!(Problem::tiny().precision, Precision::F64);
    }

    #[test]
    fn accel_and_subdomain_builders_apply() {
        let p = Problem::tiny()
            .with_strategy(StrategyKind::SweepGmres)
            .with_accelerator(AcceleratorKind::Dsa)
            .with_accel_cg(1e-10, 50)
            .with_subdomain_krylov_budget(7);
        assert_eq!(p.accelerator, AcceleratorKind::Dsa);
        assert_eq!(p.accel_cg_tolerance, 1e-10);
        assert_eq!(p.accel_cg_iterations, 50);
        assert_eq!(p.subdomain_krylov_budget, Some(7));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn dangling_dsa_accelerator_is_rejected_on_every_path() {
        // Plain source iteration never reads the accelerator; validate()
        // must reject the combination so direct `Problem` construction
        // cannot silently ignore the knob (the builder inherits this).
        let p = Problem::tiny().with_accelerator(AcceleratorKind::Dsa);
        assert!(matches!(
            p.validate(),
            Err(Error::InvalidProblem {
                field: "accelerator",
                ..
            })
        ));
    }

    #[test]
    fn mesh_construction_matches_extents() {
        let p = Problem::tiny();
        let mesh = p.build_mesh();
        assert_eq!(mesh.num_cells(), p.num_cells());
        assert!((mesh.twist().max_angle - p.twist).abs() < 1e-15);
    }

    #[test]
    fn default_is_quickstart() {
        assert_eq!(Problem::default(), Problem::quickstart());
    }
}
