//! Pre-assembled (and pre-factorised) local matrices — the optimisation
//! ablation of §IV-B.1 of the paper.
//!
//! "For low order elements it may be attractive to pre-assemble (and
//! invert) the matrix as it is invariant across the outer and inner
//! iteration loops.  This will clearly increase the memory footprint of the
//! application as a matrix must be stored for each angle-group-element (for
//! linear elements this is a factor of 8 times the already large angular
//! flux array)."
//!
//! This module builds exactly that storage: for every
//! (element, angle, group) triple it assembles the system matrix once
//! (it depends only on the direction, the total cross section and the
//! element geometry — not on the evolving source), factorises it with the
//! selected LU, and then lets the per-iteration kernel reduce to
//! "assemble the right-hand side + two triangular solves".  The benchmark
//! `ablation_preassembly` compares this against on-the-fly assembly and
//! reports both the time and the memory trade-off.

use serde::{Deserialize, Serialize};

use unsnap_fem::element::ReferenceElement;
use unsnap_fem::geometry::HexVertices;
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_linalg::lu::{factor_blocked, LuFactors};
use unsnap_linalg::DenseMatrix;
use unsnap_mesh::UnstructuredMesh;

use crate::angular::AngularQuadrature;
use crate::data::ProblemData;
use crate::error::Result;
use crate::kernel::KernelScratch;
use crate::problem::Problem;

/// Storage report for a pre-assembled matrix set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreassemblyFootprint {
    /// Number of matrices stored.
    pub matrices: usize,
    /// Bytes used by the factorised matrices (excluding pivot vectors).
    pub matrix_bytes: usize,
    /// Bytes the angular flux itself occupies, for the paper's "factor of
    /// (p+1)³ times the angular flux" comparison.
    pub angular_flux_bytes: usize,
}

impl PreassemblyFootprint {
    /// Ratio of matrix storage to angular-flux storage.
    pub fn ratio_to_angular_flux(&self) -> f64 {
        if self.angular_flux_bytes == 0 {
            0.0
        } else {
            self.matrix_bytes as f64 / self.angular_flux_bytes as f64
        }
    }
}

/// Pre-assembled, pre-factorised system matrices for every
/// (element, angle, group) triple of a problem.
pub struct PreassembledMatrices {
    nodes: usize,
    num_groups: usize,
    num_angles: usize,
    factors: Vec<LuFactors>,
    angular_flux_bytes: usize,
}

impl PreassembledMatrices {
    /// Assemble and factorise every local matrix of `problem`.
    ///
    /// Memory grows as `cells × angles × groups × (p+1)⁶ × 8` bytes, so
    /// this is only sensible for small problems and low orders — which is
    /// the point the paper makes.
    pub fn build(
        problem: &Problem,
        mesh: &UnstructuredMesh,
        quadrature: &AngularQuadrature,
        data: &ProblemData,
    ) -> Result<Self> {
        let element = ReferenceElement::new(problem.element_order);
        let nodes = element.nodes_per_element();
        let ne = mesh.num_cells();
        let ng = problem.num_groups;
        let na = quadrature.num_angles();

        let mut factors = Vec::with_capacity(ne * ng * na);
        let mut scratch = KernelScratch::new(nodes);
        for cell in 0..ne {
            let hex = HexVertices {
                corners: *mesh.cell_corners(cell),
            };
            let ints = ElementIntegrals::compute(&element, &hex);
            let mat = data.material(cell);
            for (angle, d) in quadrature.directions().iter().enumerate() {
                let _ = angle;
                for g in 0..ng {
                    let sigma_t = data.xs.total(mat, g);
                    assemble_matrix_only(&ints, d.omega, sigma_t, &mut scratch.matrix);
                    // A singular local matrix surfaces as
                    // `Error::Singular` with its pivot magnitude.
                    let f = factor_blocked(&scratch.matrix, 32)?;
                    factors.push(f);
                }
            }
        }

        Ok(Self {
            nodes,
            num_groups: ng,
            num_angles: na,
            factors,
            angular_flux_bytes: problem.angular_flux_bytes(),
        })
    }

    /// The stored factors for `(element, angle, group)`.
    pub fn factors(&self, element: usize, angle: usize, group: usize) -> &LuFactors {
        &self.factors[(element * self.num_angles + angle) * self.num_groups + group]
    }

    /// Solve `A ψ = b` using the stored factors (`b` is overwritten).
    pub fn solve_in_place(
        &self,
        element: usize,
        angle: usize,
        group: usize,
        b: &mut [f64],
    ) -> Result<()> {
        Ok(self.factors(element, angle, group).solve_in_place(b)?)
    }

    /// Total number of stored matrices.
    pub fn num_matrices(&self) -> usize {
        self.factors.len()
    }

    /// Storage footprint report.
    pub fn footprint(&self) -> PreassemblyFootprint {
        PreassemblyFootprint {
            matrices: self.factors.len(),
            matrix_bytes: self.factors.len() * self.nodes * self.nodes * 8,
            angular_flux_bytes: self.angular_flux_bytes,
        }
    }
}

/// Assemble only the system matrix (volume + outflow-face terms) — the part
/// that is invariant across iterations.
pub fn assemble_matrix_only(
    integrals: &ElementIntegrals,
    omega: [f64; 3],
    sigma_t: f64,
    matrix: &mut DenseMatrix,
) {
    let n = integrals.nodes_per_element();
    debug_assert_eq!(matrix.rows(), n);
    for i in 0..n {
        let row_m = integrals.mass.row(i);
        let row_x = integrals.stream[0].row(i);
        let row_y = integrals.stream[1].row(i);
        let row_z = integrals.stream[2].row(i);
        let out = matrix.row_mut(i);
        for j in 0..n {
            out[j] = sigma_t * row_m[j]
                - (omega[0] * row_x[j] + omega[1] * row_y[j] + omega[2] * row_z[j]);
        }
    }
    for face in &integrals.faces {
        if face.direction_dot_normal(omega) <= 0.0 {
            continue;
        }
        for (a, &ia) in face.node_indices.iter().enumerate() {
            for (b, &ib) in face.node_indices.iter().enumerate() {
                matrix[(ia, ib)] += omega[0] * face.matrices[0][(a, b)]
                    + omega[1] * face.matrices[1][(a, b)]
                    + omega[2] * face.matrices[2][(a, b)];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{assemble, UpwindFace, UpwindSource};
    use unsnap_fem::face::FACES;
    use unsnap_linalg::{GaussSolver, LinearSolver};

    fn setup(problem: &Problem) -> (UnstructuredMesh, AngularQuadrature, ProblemData) {
        let mesh = problem.build_mesh();
        let quadrature = AngularQuadrature::product(problem.angles_per_octant);
        let grid = problem.grid();
        let data = ProblemData::generate(
            mesh.num_cells(),
            |cell| mesh.cell_centroid(cell),
            [grid.lx, grid.ly, grid.lz],
            problem.num_groups,
            problem.material,
            problem.source,
        );
        (mesh, quadrature, data)
    }

    #[test]
    fn preassembled_count_and_footprint() {
        let mut p = Problem::tiny();
        p.nx = 2;
        p.ny = 2;
        p.nz = 2;
        let (mesh, quad, data) = setup(&p);
        let pre = PreassembledMatrices::build(&p, &mesh, &quad, &data).unwrap();
        assert_eq!(pre.num_matrices(), 8 * quad.num_angles() * p.num_groups);
        let fp = pre.footprint();
        assert_eq!(fp.matrices, pre.num_matrices());
        // For linear elements the matrix store is exactly (p+1)³ = 8 times
        // the angular-flux store (n² vs n values per element/angle/group).
        assert!((fp.ratio_to_angular_flux() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn preassembled_solution_matches_on_the_fly_kernel() {
        let mut p = Problem::tiny();
        p.nx = 2;
        p.ny = 2;
        p.nz = 2;
        let (mesh, quad, data) = setup(&p);
        let element = ReferenceElement::new(p.element_order);
        let pre = PreassembledMatrices::build(&p, &mesh, &quad, &data).unwrap();

        let cell = 3;
        let angle = 5;
        let group = 1;
        let d = quad.directions()[angle];
        let hex = HexVertices {
            corners: *mesh.cell_corners(cell),
        };
        let ints = ElementIntegrals::compute(&element, &hex);
        let sigma_t = data.xs.total(data.material(cell), group);
        let n = ints.nodes_per_element();
        let source = vec![1.3; n];
        // Vacuum upwind on the inflow faces.
        let upwind: Vec<UpwindFace<'_>> = FACES
            .iter()
            .filter(|f| ints.face(**f).direction_dot_normal(d.omega) < 0.0)
            .map(|f| UpwindFace {
                face: f.index(),
                source: UpwindSource::Boundary(0.0),
            })
            .collect();

        // On-the-fly path.
        let mut scratch = KernelScratch::new(n);
        assemble(&ints, d.omega, sigma_t, &source, &upwind, &mut scratch);
        let mut reference = scratch.rhs.clone();
        GaussSolver::new()
            .solve_in_place(&mut scratch.matrix, &mut reference)
            .unwrap();

        // Pre-assembled path: assemble only the RHS, reuse the factors.
        let mut scratch2 = KernelScratch::new(n);
        assemble(&ints, d.omega, sigma_t, &source, &upwind, &mut scratch2);
        let mut rhs = scratch2.rhs.clone();
        pre.solve_in_place(cell, angle, group, &mut rhs).unwrap();

        for (a, b) in reference.iter().zip(rhs.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matrix_only_assembly_matches_full_assembly_matrix() {
        let p = Problem::tiny();
        let (mesh, quad, data) = setup(&p);
        let element = ReferenceElement::new(1);
        let cell = 0;
        let hex = HexVertices {
            corners: *mesh.cell_corners(cell),
        };
        let ints = ElementIntegrals::compute(&element, &hex);
        let d = quad.directions()[2];
        let sigma_t = data.xs.total(0, 0);
        let n = ints.nodes_per_element();

        let mut only = DenseMatrix::zeros(n, n);
        assemble_matrix_only(&ints, d.omega, sigma_t, &mut only);

        let mut scratch = KernelScratch::new(n);
        assemble(&ints, d.omega, sigma_t, &vec![0.0; n], &[], &mut scratch);
        for i in 0..n {
            for j in 0..n {
                assert!((only[(i, j)] - scratch.matrix[(i, j)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn footprint_ratio_handles_zero() {
        let fp = PreassemblyFootprint {
            matrices: 0,
            matrix_bytes: 0,
            angular_flux_bytes: 0,
        };
        assert_eq!(fp.ratio_to_angular_flux(), 0.0);
    }
}
