//! The DSA accelerator: restriction/prolongation glue between the
//! high-order DG flux storage and the low-order diffusion solver of
//! `unsnap-accel`.
//!
//! The low-order error equation lives on *cell averages* — one unknown
//! per (cell, group) — while the transport flux carries `(p + 1)³` nodal
//! values per cell.  The [`DsaAccelerator`] owns the standard
//! restriction/prolongation pair for that gap:
//!
//! * **restriction** integrates the nodal sweep residual
//!   `σ_s (φ^{l+1/2} − φ^l)` over each cell with the element mass-matrix
//!   row sums (`∫ φ_i dV`, the Lagrange quadrature weights), yielding
//!   the finite-volume right-hand side;
//! * the **low-order solve** runs the SPD diffusion operator of
//!   [`unsnap_accel`] through CG (with reused
//!   [`CgWorkspace`](unsnap_krylov::CgWorkspace) buffers), streaming
//!   every residual to
//!   [`RunObserver::on_accel_residual`];
//! * **prolongation** adds the cell-wise correction to every node of the
//!   cell (constant prolongation — the exact adjoint of the integral
//!   restriction for a partition-of-unity basis).
//!
//! One accelerator is built lazily per solve context: the single-domain
//! [`TransportSolver`](crate::solver::TransportSolver) builds one over
//! the whole mesh; each block-Jacobi rank builds one over its own cells
//! with Dirichlet-zero coupling at cut faces (see
//! [`DiffusionTopology::from_mesh_subset`](unsnap_accel::DiffusionTopology::from_mesh_subset)).
//! Everything is sequential, so corrections are bit-for-bit identical at
//! every thread count.

use unsnap_accel::{DiffusionOperator, DiffusionTopology, DsaConfig, DsaSolver};
use unsnap_fem::element::ReferenceElement;
use unsnap_fem::geometry::HexVertices;
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_mesh::UnstructuredMesh;

use crate::data::ProblemData;
use crate::error::Result;
use crate::layout::FluxLayout;
use crate::session::RunObserver;
use crate::solver::RunStats;

/// Dimensionless coefficient of the `(σ_t h)²` thick-cell inflation of
/// the diffusion coefficient (see the comment in
/// [`DsaAccelerator::build`]).  Chosen empirically: large enough that
/// DSA-SI never diverges on optically thick cells (the bare
/// inconsistent scheme diverges for `σ_t h ≳ 3`), small enough that the
/// `σ_t h ≈ 1` regime keeps its full acceleration.
pub const THICK_CELL_STABILISATION: f64 = 0.0625;

/// Restriction/prolongation glue plus the owned low-order solver; see
/// the [module docs](self).
#[derive(Debug, Clone)]
pub struct DsaAccelerator {
    solver: DsaSolver,
    /// Layout of the scalar-flux slices this accelerator corrects
    /// (`num_elements` local cells).
    layout: FluxLayout,
    /// Within-group scattering `σ_s(g → g)` per (local cell, group),
    /// cell-major.
    sigma_s: Vec<f64>,
    /// Nodal integration weights `∫ φ_i dV` per local cell, cell-major
    /// (`cell · nodes + i`).
    node_weights: Vec<f64>,
    /// Low-order right-hand side scratch (`cells × groups`).
    rhs: Vec<f64>,
}

impl DsaAccelerator {
    /// Build the accelerator for the local cells `cells` (global mesh
    /// ids, in local order) of `mesh`.
    ///
    /// `layout` describes the scalar-flux slices that will be corrected
    /// (its `num_elements` must equal `cells.len()`); `integrals`, when
    /// given, are the solver's precomputed per-element integrals indexed
    /// by *global* cell id — otherwise the needed mass-row sums are
    /// integrated here.
    pub fn build(
        mesh: &UnstructuredMesh,
        cells: &[usize],
        element: &ReferenceElement,
        integrals: Option<&[ElementIntegrals]>,
        data: &ProblemData,
        layout: FluxLayout,
        config: DsaConfig,
    ) -> Self {
        assert_eq!(layout.num_elements, cells.len(), "layout/cell mismatch");
        assert_eq!(layout.num_angles, 1, "scalar layout expected");
        let ng = layout.num_groups;
        let nodes = layout.nodes_per_element;

        let topology = DiffusionTopology::from_mesh_subset(mesh, cells);

        let mut sigma_s = Vec::with_capacity(cells.len() * ng);
        let mut diffusion = Vec::with_capacity(cells.len() * ng);
        let mut removal = Vec::with_capacity(cells.len() * ng);
        let mut node_weights = Vec::with_capacity(cells.len() * nodes);
        for (local, &global) in cells.iter().enumerate() {
            let mat = data.material(global);
            // Characteristic cell size for the thick-cell stabilisation.
            let h = topology.volumes[local].cbrt();
            for g in 0..ng {
                let sigma_t = data.xs.total(mat, g);
                let s = data.xs.scatter(mat, g, g);
                sigma_s.push(s);
                // D = 1/(3σ_t) plus Larsen-style thick-cell inflation:
                // the inconsistent (cell-centred FV under DG transport)
                // discretisation over-corrects — and eventually diverges
                // — when cells are optically thick, because the
                // low-order solve attributes sweep-attenuated
                // high-frequency residuals to diffusive modes.  Inflating
                // D by O((σ_t h)²) damps exactly those spatial
                // overshoots while leaving the flat (infinite-medium)
                // mode kill untouched — the flat-mode correction is
                // independent of D.
                let tau = sigma_t * h;
                diffusion
                    .push(1.0 / (3.0 * sigma_t) + THICK_CELL_STABILISATION * tau * tau / sigma_t);
                removal.push(sigma_t - s);
            }
            // ∫ φ_i dV = Σ_j M_ij (partition of unity): the mass-matrix
            // row sums are the nodal quadrature weights of the cell.
            let computed;
            let ints: &ElementIntegrals = match integrals {
                Some(list) => &list[global],
                None => {
                    let hex = HexVertices {
                        corners: *mesh.cell_corners(global),
                    };
                    computed = ElementIntegrals::compute(element, &hex);
                    &computed
                }
            };
            for i in 0..nodes {
                node_weights.push(ints.mass.row(i).iter().sum());
            }
        }

        let operator = DiffusionOperator::assemble(&topology, ng, &diffusion, &removal);
        Self {
            solver: DsaSolver::new(operator, config),
            layout,
            sigma_s,
            node_weights,
            rhs: vec![0.0; cells.len() * ng],
        }
    }

    /// The flux layout this accelerator was built for.
    pub fn layout(&self) -> &FluxLayout {
        &self.layout
    }

    /// Apply one DSA correction to `phi` in place.
    ///
    /// `previous` is the iterate the sweep started from (`φ^l`); `phi`
    /// holds the post-sweep iterate (`φ^{l+1/2}`) on entry and the
    /// corrected iterate (`φ^{l+1}`) on return.  CG work is accounted in
    /// `stats` (`accel_cg_iterations`, `accel_residual_history`) and
    /// every CG residual streams through
    /// [`RunObserver::on_accel_residual`].
    pub fn correct(
        &mut self,
        phi: &mut [f64],
        previous: &[f64],
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<()> {
        let ne = self.layout.num_elements;
        let ng = self.layout.num_groups;
        let nodes = self.layout.nodes_per_element;
        debug_assert_eq!(phi.len(), self.layout.len());
        debug_assert_eq!(previous.len(), self.layout.len());

        for c in 0..ne {
            let weights = &self.node_weights[c * nodes..(c + 1) * nodes];
            for g in 0..ng {
                let base = self.layout.base(c, g, 0);
                let mut moment = 0.0;
                for (i, &w) in weights.iter().enumerate() {
                    moment += w * (phi[base + i] - previous[base + i]);
                }
                self.rhs[c * ng + g] = self.sigma_s[c * ng + g] * moment;
            }
        }

        let (correction, outcome) = self.solver.solve(&self.rhs, |iteration, residual| {
            observer.on_accel_residual(iteration, residual)
        })?;

        for c in 0..ne {
            for g in 0..ng {
                let e = correction[c * ng + g];
                let base = self.layout.base(c, g, 0);
                for node in phi[base..base + nodes].iter_mut() {
                    *node += e;
                }
            }
        }

        stats.accel_cg_iterations += outcome.iterations;
        stats
            .accel_residual_history
            .extend_from_slice(&outcome.residual_history);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{MaterialOption, SourceOption};
    use crate::session::NoopObserver;
    use unsnap_mesh::StructuredGrid;
    use unsnap_sweep::LoopOrder;

    fn accelerator(n: usize, ng: usize, c: f64) -> DsaAccelerator {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001);
        let cells: Vec<usize> = (0..mesh.num_cells()).collect();
        let element = ReferenceElement::new(1);
        let mut data = ProblemData::generate(
            mesh.num_cells(),
            |cell| mesh.cell_centroid(cell),
            [1.0, 1.0, 1.0],
            ng,
            MaterialOption::Option1,
            SourceOption::Option1,
        );
        data.xs = crate::data::CrossSections::with_scattering_ratio(ng, 1, c);
        let layout = FluxLayout::scalar(8, mesh.num_cells(), ng, LoopOrder::ElementThenGroup);
        DsaAccelerator::build(
            &mesh,
            &cells,
            &element,
            None,
            &data,
            layout,
            DsaConfig::default(),
        )
    }

    #[test]
    fn zero_residual_leaves_the_flux_untouched() {
        let mut acc = accelerator(2, 2, 0.9);
        let n = acc.layout().len();
        let phi_ref: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut phi = phi_ref.clone();
        let mut stats = RunStats::default();
        acc.correct(&mut phi, &phi_ref, &mut stats, &mut NoopObserver)
            .unwrap();
        assert_eq!(phi, phi_ref);
        assert_eq!(stats.accel_cg_iterations, 0);
    }

    #[test]
    fn positive_residual_pushes_the_flux_up() {
        // A uniformly positive sweep update means the error estimate is
        // positive everywhere: the correction must add, not subtract.
        let mut acc = accelerator(3, 1, 0.95);
        let n = acc.layout().len();
        let previous = vec![0.0; n];
        let half = vec![1.0; n];
        let mut phi = half.clone();
        let mut stats = RunStats::default();
        acc.correct(&mut phi, &previous, &mut stats, &mut NoopObserver)
            .unwrap();
        assert!(stats.accel_cg_iterations > 0);
        assert!(!stats.accel_residual_history.is_empty());
        assert!(
            phi.iter().zip(half.iter()).all(|(a, b)| a > b),
            "correction must be positive for a positive residual"
        );
    }

    #[test]
    fn correction_is_nodewise_constant_per_cell() {
        let mut acc = accelerator(2, 1, 0.9);
        let layout = *acc.layout();
        let n = layout.len();
        let previous = vec![0.0; n];
        // A non-uniform update: cell averages differ.
        let half: Vec<f64> = (0..n).map(|i| 1.0 + ((i / 8) % 4) as f64).collect();
        let mut phi = half.clone();
        acc.correct(
            &mut phi,
            &previous,
            &mut RunStats::default(),
            &mut NoopObserver,
        )
        .unwrap();
        for c in 0..layout.num_elements {
            let base = layout.base(c, 0, 0);
            let delta: Vec<f64> = (0..layout.nodes_per_element)
                .map(|i| phi[base + i] - half[base + i])
                .collect();
            for d in &delta {
                assert!((d - delta[0]).abs() < 1e-14, "non-constant prolongation");
            }
        }
    }
}
