//! Aggregation of the [`RunObserver`] event stream into run-level
//! telemetry.
//!
//! Three consumers of the same stream live here:
//!
//! * [`MetricsObserver`] folds every event (untagged *and* rank-tagged)
//!   into a [`RunMetrics`] snapshot.  The solvers tee one of these with
//!   the caller's observer on every `run_observed`, so each
//!   [`SolveOutcome`](crate::solver::SolveOutcome) /
//!   `BlockJacobiOutcome` carries its metrics without any caller
//!   wiring.
//! * [`RunMetrics`] itself is split by the observability contract:
//!   deterministic counters/histograms (sweeps, cells, iteration and
//!   exchange counts — bit-for-bit identical at every thread and rank
//!   count) versus wall-clock fields (per-phase seconds, per-sweep
//!   latency), which [`RunMetrics::zero_wallclock`] strips before
//!   cross-run comparisons and a mock
//!   [`Clock`](unsnap_obs::clock::Clock) pins exactly.
//! * [`JsonlObserver`] streams every event verbatim to a JSONL run log
//!   (one JSON document per line) for offline analysis.
//!
//! ```
//! use unsnap_core::builder::ProblemBuilder;
//!
//! let outcome = ProblemBuilder::tiny().session().unwrap().run().unwrap();
//! assert_eq!(outcome.metrics.sweeps, outcome.sweep_count);
//! assert!(outcome.metrics.to_json().contains("\"cells_swept\""));
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use unsnap_obs::json::JsonObject;
use unsnap_obs::jsonl::JsonlWriter;
use unsnap_obs::metrics::{Determinism, Histogram, MetricsRegistry};

use crate::session::{Phase, RunObserver};

/// The fixed bucket scale for the deterministic cells-per-sweep
/// histogram: powers of four from 1 to ~10⁹ kernel invocations.
fn cells_histogram() -> Histogram {
    let bounds: Vec<f64> = (0..16).map(|k| 4f64.powi(k)).collect();
    Histogram::with_bounds(&bounds)
}

/// The telemetry snapshot of one solve, attached to every outcome.
///
/// Fields up to [`RunMetrics::phase_starts`] (and the
/// [`RunMetrics::cells_per_sweep`] histogram) are **deterministic** —
/// event counts and payload sizes, identical at every thread/rank count.
/// The remaining fields are **wall-clock** and excluded from determinism
/// comparisons; [`RunMetrics::zero_wallclock`] normalises them away.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Transport sweeps performed (summed across ranks).
    pub sweeps: usize,
    /// Wavefront buckets dispatched, summed over all sweeps on all
    /// ranks (deterministic — the scheduling *structure*, not timing).
    pub sweep_buckets: usize,
    /// Assemble/solve tasks summed over all observed buckets
    /// (deterministic; matches `cells_swept` once per-bucket events
    /// stream).
    pub bucket_tasks: u64,
    /// Kernel invocations (elements × groups × angles) summed over all
    /// sweeps on all ranks.
    pub cells_swept: u64,
    /// Outer (group-coupling / halo) iterations started.
    pub outers: usize,
    /// Global inner iterates reported.
    pub inner_iterations: usize,
    /// Rank-local inner iterates reported (distributed solves only).
    pub rank_inner_iterations: usize,
    /// Krylov residual events streamed (global + per-rank).
    pub krylov_residual_events: usize,
    /// DSA CG residual events streamed (global + per-rank).
    pub accel_residual_events: usize,
    /// Halo exchanges performed (distributed solves only).
    pub halo_exchanges: usize,
    /// Cut faces crossed, summed over all halo exchanges.
    pub halo_faces: usize,
    /// Bytes of angular flux published, summed over all halo exchanges.
    pub halo_bytes: u64,
    /// Phase spans opened, indexed by [`Phase::index`].
    pub phase_starts: Vec<usize>,
    /// Kernel invocations per sweep (deterministic histogram).
    pub cells_per_sweep: Histogram,
    /// Wall-clock seconds per phase, indexed by [`Phase::index`].
    pub phase_seconds: Vec<f64>,
    /// Wall-clock seconds per transport sweep (p50/p95 come from here).
    pub sweep_latency: Histogram,
    /// Wall-clock seconds in kernel matrix assembly (from the kernel's
    /// internal timers, surfaced by the solver at snapshot time).
    pub kernel_assemble_seconds: f64,
    /// Wall-clock seconds in kernel linear solves.
    pub kernel_solve_seconds: f64,
}

impl Default for RunMetrics {
    fn default() -> Self {
        Self {
            sweeps: 0,
            sweep_buckets: 0,
            bucket_tasks: 0,
            cells_swept: 0,
            outers: 0,
            inner_iterations: 0,
            rank_inner_iterations: 0,
            krylov_residual_events: 0,
            accel_residual_events: 0,
            halo_exchanges: 0,
            halo_faces: 0,
            halo_bytes: 0,
            phase_starts: vec![0; Phase::all().len()],
            cells_per_sweep: cells_histogram(),
            phase_seconds: vec![0.0; Phase::all().len()],
            sweep_latency: Histogram::latency_seconds(),
            kernel_assemble_seconds: 0.0,
            kernel_solve_seconds: 0.0,
        }
    }
}

impl RunMetrics {
    /// Spans opened for `phase`.
    pub fn phase_count(&self, phase: Phase) -> usize {
        self.phase_starts[phase.index()]
    }

    /// Wall-clock seconds attributed to `phase`.
    pub fn phase_time(&self, phase: Phase) -> f64 {
        self.phase_seconds[phase.index()]
    }

    /// Median per-sweep wall-clock latency, if any sweep was timed.
    pub fn sweep_p50(&self) -> Option<f64> {
        self.sweep_latency.quantile(0.5)
    }

    /// 95th-percentile per-sweep wall-clock latency.
    pub fn sweep_p95(&self) -> Option<f64> {
        self.sweep_latency.quantile(0.95)
    }

    /// 99th-percentile per-sweep wall-clock latency (tail latency —
    /// the trajectory schema's `sweep_p99` column).
    pub fn sweep_p99(&self) -> Option<f64> {
        self.sweep_latency.quantile(0.99)
    }

    /// Zero every wall-clock field in place, leaving the deterministic
    /// counters untouched — the normalisation the determinism suites
    /// apply before comparing metrics across thread/rank counts.
    pub fn zero_wallclock(&mut self) {
        for s in &mut self.phase_seconds {
            *s = 0.0;
        }
        self.sweep_latency = Histogram::latency_seconds();
        self.kernel_assemble_seconds = 0.0;
        self.kernel_solve_seconds = 0.0;
    }

    /// A copy with the wall-clock fields zeroed.
    pub fn deterministic(&self) -> Self {
        let mut copy = self.clone();
        copy.zero_wallclock();
        copy
    }

    /// Export into a tagged [`MetricsRegistry`] (the generic form
    /// tooling can merge and filter by determinism class).
    pub fn registry(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        let det = Determinism::Deterministic;
        let wall = Determinism::WallClock;
        r.counter_add("sweeps", det, self.sweeps as u64);
        r.counter_add("sweep_buckets", det, self.sweep_buckets as u64);
        r.counter_add("bucket_tasks", det, self.bucket_tasks);
        r.counter_add("cells_swept", det, self.cells_swept);
        r.counter_add("outers", det, self.outers as u64);
        r.counter_add("inner_iterations", det, self.inner_iterations as u64);
        r.counter_add(
            "rank_inner_iterations",
            det,
            self.rank_inner_iterations as u64,
        );
        r.counter_add(
            "krylov_residual_events",
            det,
            self.krylov_residual_events as u64,
        );
        r.counter_add(
            "accel_residual_events",
            det,
            self.accel_residual_events as u64,
        );
        r.counter_add("halo_exchanges", det, self.halo_exchanges as u64);
        r.counter_add("halo_faces", det, self.halo_faces as u64);
        r.counter_add("halo_bytes", det, self.halo_bytes);
        for phase in Phase::all() {
            r.counter_add(
                &format!("phase_starts.{phase}"),
                det,
                self.phase_starts[phase.index()] as u64,
            );
            r.gauge_set(
                &format!("phase_seconds.{phase}"),
                wall,
                self.phase_seconds[phase.index()],
            );
        }
        r.histogram_insert("cells_per_sweep", det, self.cells_per_sweep.clone());
        r.histogram_insert("sweep_latency_seconds", wall, self.sweep_latency.clone());
        r.gauge_set(
            "kernel_assemble_seconds",
            wall,
            self.kernel_assemble_seconds,
        );
        r.gauge_set("kernel_solve_seconds", wall, self.kernel_solve_seconds);
        r
    }

    /// Serialise as a JSON object with `deterministic` and `wallclock`
    /// sections (phase maps keyed by [`Phase::label`]).
    pub fn to_json(&self) -> String {
        let mut phase_starts = JsonObject::new();
        let mut phase_seconds = JsonObject::new();
        for phase in Phase::all() {
            phase_starts =
                phase_starts.field_usize(phase.label(), self.phase_starts[phase.index()]);
            phase_seconds =
                phase_seconds.field_f64(phase.label(), self.phase_seconds[phase.index()]);
        }
        let deterministic = JsonObject::new()
            .field_usize("sweeps", self.sweeps)
            .field_usize("sweep_buckets", self.sweep_buckets)
            .field_u64("bucket_tasks", self.bucket_tasks)
            .field_u64("cells_swept", self.cells_swept)
            .field_usize("outers", self.outers)
            .field_usize("inner_iterations", self.inner_iterations)
            .field_usize("rank_inner_iterations", self.rank_inner_iterations)
            .field_usize("krylov_residual_events", self.krylov_residual_events)
            .field_usize("accel_residual_events", self.accel_residual_events)
            .field_usize("halo_exchanges", self.halo_exchanges)
            .field_usize("halo_faces", self.halo_faces)
            .field_u64("halo_bytes", self.halo_bytes)
            .field_raw("phase_starts", &phase_starts.finish())
            .field_raw("cells_per_sweep", &self.cells_per_sweep.to_json())
            .finish();
        let wallclock = JsonObject::new()
            .field_raw("phase_seconds", &phase_seconds.finish())
            .field_raw("sweep_latency_seconds", &self.sweep_latency.to_json())
            .field_f64("kernel_assemble_seconds", self.kernel_assemble_seconds)
            .field_f64("kernel_solve_seconds", self.kernel_solve_seconds)
            .finish();
        JsonObject::new()
            .field_raw("deterministic", &deterministic)
            .field_raw("wallclock", &wallclock)
            .finish()
    }

    /// Render the per-phase wall-clock breakdown as an aligned table
    /// (phase, spans, seconds, share of the phase total).
    pub fn phase_table(&self) -> String {
        let total: f64 = self.phase_seconds.iter().sum();
        let mut out = String::from("phase            spans     seconds    share\n");
        for phase in Phase::all() {
            let seconds = self.phase_seconds[phase.index()];
            let share = if total > 0.0 {
                100.0 * seconds / total
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<15} {:>6} {:>11.6} {:>7.1}%\n",
                phase.label(),
                self.phase_starts[phase.index()],
                seconds,
                share
            ));
        }
        out.push_str(&format!("{:<15} {:>6} {:>11.6}\n", "total", "", total));
        out
    }
}

/// The observer the solvers tee into every run: folds the full event
/// stream — untagged and rank-tagged alike — into a [`RunMetrics`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsObserver {
    /// The running totals (readable mid-run; snapshot with
    /// [`MetricsObserver::snapshot`]).
    pub metrics: RunMetrics,
}

impl MetricsObserver {
    /// A fresh observer with zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the current totals.
    pub fn snapshot(&self) -> RunMetrics {
        self.metrics.clone()
    }

    fn record_sweep(&mut self, cells: u64, seconds: f64) {
        self.metrics.cells_swept += cells;
        self.metrics.cells_per_sweep.record(cells as f64);
        self.metrics.sweep_latency.record(seconds);
    }

    fn record_phase_start(&mut self, phase: Phase) {
        self.metrics.phase_starts[phase.index()] += 1;
    }

    fn record_phase_end(&mut self, phase: Phase, seconds: f64) {
        self.metrics.phase_seconds[phase.index()] += seconds;
    }
}

impl RunObserver for MetricsObserver {
    fn on_outer_start(&mut self, _outer: usize) {
        self.metrics.outers += 1;
    }

    fn on_inner_iteration(&mut self, _inner: usize, _relative_change: f64) {
        self.metrics.inner_iterations += 1;
    }

    fn on_sweep(&mut self, sweep: usize, cells: u64, seconds: f64) {
        // Single-domain solves report a running count; ranks report
        // their own counts through the rank hook below.
        self.metrics.sweeps = self.metrics.sweeps.max(sweep);
        self.record_sweep(cells, seconds);
    }

    fn on_sweep_bucket(&mut self, _angle: usize, _bucket: usize, tasks: u64) {
        self.metrics.sweep_buckets += 1;
        self.metrics.bucket_tasks += tasks;
    }

    fn on_krylov_residual(&mut self, _iteration: usize, _relative_residual: f64) {
        self.metrics.krylov_residual_events += 1;
    }

    fn on_accel_residual(&mut self, _iteration: usize, _relative_residual: f64) {
        self.metrics.accel_residual_events += 1;
    }

    fn on_phase_start(&mut self, phase: Phase) {
        self.record_phase_start(phase);
    }

    fn on_phase_end(&mut self, phase: Phase, seconds: f64) {
        self.record_phase_end(phase, seconds);
    }

    fn on_halo_exchange(&mut self, _iteration: usize, faces: usize, bytes: u64) {
        self.metrics.halo_exchanges += 1;
        self.metrics.halo_faces += faces;
        self.metrics.halo_bytes += bytes;
    }

    fn on_rank_inner_iteration(&mut self, _rank: usize, _inner: usize, _relative_change: f64) {
        self.metrics.rank_inner_iterations += 1;
    }

    fn on_rank_sweep(&mut self, _rank: usize, _sweep: usize, cells: u64, seconds: f64) {
        self.metrics.sweeps += 1;
        self.record_sweep(cells, seconds);
    }

    fn on_rank_sweep_bucket(&mut self, _rank: usize, _angle: usize, _bucket: usize, tasks: u64) {
        self.metrics.sweep_buckets += 1;
        self.metrics.bucket_tasks += tasks;
    }

    fn on_rank_krylov_residual(&mut self, _rank: usize, _iteration: usize, _residual: f64) {
        self.metrics.krylov_residual_events += 1;
    }

    fn on_rank_accel_residual(&mut self, _rank: usize, _iteration: usize, _residual: f64) {
        self.metrics.accel_residual_events += 1;
    }

    fn on_rank_phase_start(&mut self, _rank: usize, phase: Phase) {
        self.record_phase_start(phase);
    }

    fn on_rank_phase_end(&mut self, _rank: usize, phase: Phase, seconds: f64) {
        self.record_phase_end(phase, seconds);
    }
}

/// An observer that streams every event to a JSONL run log, one JSON
/// document per line (rank-tagged events carry a `rank` field).
///
/// I/O failures are latched rather than panicking mid-solve: writing
/// stops at the first error, which [`JsonlObserver::finish`] reports.
#[derive(Debug)]
pub struct JsonlObserver<W: Write> {
    writer: JsonlWriter<W>,
    error: Option<io::Error>,
    events_written: usize,
}

impl JsonlObserver<BufWriter<File>> {
    /// Stream events to a new (truncated) JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(JsonlWriter::create(path)?))
    }
}

impl<W: Write> JsonlObserver<W> {
    /// Stream events into an existing JSONL writer.
    pub fn new(writer: JsonlWriter<W>) -> Self {
        Self {
            writer,
            error: None,
            events_written: 0,
        }
    }

    /// Events successfully written so far.
    pub fn events_written(&self) -> usize {
        self.events_written
    }

    /// Flush and surface any latched I/O error.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }

    fn write(&mut self, object: JsonObject) {
        if self.error.is_some() {
            return;
        }
        match self.writer.write_line(&object.finish()) {
            Ok(()) => self.events_written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn event(kind: &str) -> JsonObject {
        JsonObject::new().field_str("event", kind)
    }

    fn rank_event(kind: &str, rank: usize) -> JsonObject {
        Self::event(kind).field_usize("rank", rank)
    }
}

impl<W: Write> RunObserver for JsonlObserver<W> {
    fn on_outer_start(&mut self, outer: usize) {
        self.write(Self::event("outer_start").field_usize("outer", outer));
    }

    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        self.write(
            Self::event("outer_end")
                .field_usize("outer", outer)
                .field_bool("converged", converged),
        );
    }

    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        self.write(
            Self::event("inner_iteration")
                .field_usize("inner", inner)
                .field_f64("relative_change", relative_change),
        );
    }

    fn on_sweep(&mut self, sweep: usize, cells: u64, seconds: f64) {
        self.write(
            Self::event("sweep")
                .field_usize("sweep", sweep)
                .field_u64("cells", cells)
                .field_f64("seconds", seconds),
        );
    }

    fn on_sweep_bucket(&mut self, angle: usize, bucket: usize, tasks: u64) {
        self.write(
            Self::event("sweep_bucket")
                .field_usize("angle", angle)
                .field_usize("bucket", bucket)
                .field_u64("tasks", tasks),
        );
    }

    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.write(
            Self::event("krylov_residual")
                .field_usize("iteration", iteration)
                .field_f64("relative_residual", relative_residual),
        );
    }

    fn on_accel_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.write(
            Self::event("accel_residual")
                .field_usize("iteration", iteration)
                .field_f64("relative_residual", relative_residual),
        );
    }

    fn on_phase_start(&mut self, phase: Phase) {
        self.write(Self::event("phase_start").field_str("phase", phase.label()));
    }

    fn on_phase_end(&mut self, phase: Phase, seconds: f64) {
        self.write(
            Self::event("phase_end")
                .field_str("phase", phase.label())
                .field_f64("seconds", seconds),
        );
    }

    fn on_halo_exchange(&mut self, iteration: usize, faces: usize, bytes: u64) {
        self.write(
            Self::event("halo_exchange")
                .field_usize("iteration", iteration)
                .field_usize("faces", faces)
                .field_u64("bytes", bytes),
        );
    }

    fn on_rank_outer_start(&mut self, rank: usize, outer: usize) {
        self.write(Self::rank_event("outer_start", rank).field_usize("outer", outer));
    }

    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        self.write(
            Self::rank_event("outer_end", rank)
                .field_usize("outer", outer)
                .field_bool("converged", converged),
        );
    }

    fn on_rank_inner_iteration(&mut self, rank: usize, inner: usize, relative_change: f64) {
        self.write(
            Self::rank_event("inner_iteration", rank)
                .field_usize("inner", inner)
                .field_f64("relative_change", relative_change),
        );
    }

    fn on_rank_sweep(&mut self, rank: usize, sweep: usize, cells: u64, seconds: f64) {
        self.write(
            Self::rank_event("sweep", rank)
                .field_usize("sweep", sweep)
                .field_u64("cells", cells)
                .field_f64("seconds", seconds),
        );
    }

    fn on_rank_sweep_bucket(&mut self, rank: usize, angle: usize, bucket: usize, tasks: u64) {
        self.write(
            Self::rank_event("sweep_bucket", rank)
                .field_usize("angle", angle)
                .field_usize("bucket", bucket)
                .field_u64("tasks", tasks),
        );
    }

    fn on_rank_krylov_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.write(
            Self::rank_event("krylov_residual", rank)
                .field_usize("iteration", iteration)
                .field_f64("relative_residual", relative_residual),
        );
    }

    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.write(
            Self::rank_event("accel_residual", rank)
                .field_usize("iteration", iteration)
                .field_f64("relative_residual", relative_residual),
        );
    }

    fn on_rank_phase_start(&mut self, rank: usize, phase: Phase) {
        self.write(Self::rank_event("phase_start", rank).field_str("phase", phase.label()));
    }

    fn on_rank_phase_end(&mut self, rank: usize, phase: Phase, seconds: f64) {
        self.write(
            Self::rank_event("phase_end", rank)
                .field_str("phase", phase.label())
                .field_f64("seconds", seconds),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_obs::jsonl::read_str;

    fn feed(observer: &mut dyn RunObserver) {
        observer.on_outer_start(0);
        observer.on_phase_start(Phase::SourceAssembly);
        observer.on_phase_end(Phase::SourceAssembly, 0.25);
        observer.on_sweep(1, 32, 0.01);
        observer.on_inner_iteration(1, 0.5);
        observer.on_krylov_residual(1, 0.1);
        observer.on_accel_residual(0, 1.0);
        observer.on_halo_exchange(0, 4, 512);
        observer.on_rank_sweep(2, 1, 16, 0.02);
        observer.on_rank_inner_iteration(2, 1, 0.25);
        observer.on_rank_krylov_residual(2, 1, 0.05);
        observer.on_rank_accel_residual(2, 0, 0.5);
        observer.on_rank_phase_start(2, Phase::Krylov);
        observer.on_rank_phase_end(2, Phase::Krylov, 0.125);
        observer.on_sweep_bucket(0, 0, 32);
        observer.on_rank_sweep_bucket(2, 0, 1, 16);
        observer.on_outer_end(0, true);
    }

    #[test]
    fn metrics_observer_aggregates_both_streams() {
        let mut m = MetricsObserver::new();
        feed(&mut m);
        let metrics = m.snapshot();
        assert_eq!(metrics.sweeps, 2); // running count 1 + one rank sweep
        assert_eq!(metrics.sweep_buckets, 2);
        assert_eq!(metrics.bucket_tasks, 48);
        assert_eq!(metrics.cells_swept, 48);
        assert_eq!(metrics.outers, 1);
        assert_eq!(metrics.inner_iterations, 1);
        assert_eq!(metrics.rank_inner_iterations, 1);
        assert_eq!(metrics.krylov_residual_events, 2);
        assert_eq!(metrics.accel_residual_events, 2);
        assert_eq!(metrics.halo_exchanges, 1);
        assert_eq!(metrics.halo_faces, 4);
        assert_eq!(metrics.halo_bytes, 512);
        assert_eq!(metrics.phase_count(Phase::SourceAssembly), 1);
        assert_eq!(metrics.phase_count(Phase::Krylov), 1);
        assert_eq!(metrics.phase_time(Phase::Krylov), 0.125);
        assert_eq!(metrics.cells_per_sweep.count(), 2);
        assert_eq!(metrics.sweep_latency.count(), 2);
        // Quantiles report clamped bucket bounds, so with two distinct
        // samples they land inside [min, max] in order.
        let p50 = metrics.sweep_p50().unwrap();
        let p95 = metrics.sweep_p95().unwrap();
        assert!((0.01..=0.02).contains(&p50));
        assert!(p50 <= p95 && p95 <= 0.02);
    }

    #[test]
    fn zero_wallclock_strips_exactly_the_timing_half() {
        let mut m = MetricsObserver::new();
        feed(&mut m);
        let mut metrics = m.snapshot();
        metrics.kernel_assemble_seconds = 1.5;
        let det = metrics.deterministic();
        assert_eq!(det.sweeps, metrics.sweeps);
        assert_eq!(det.cells_per_sweep, metrics.cells_per_sweep);
        assert_eq!(det.phase_starts, metrics.phase_starts);
        assert_eq!(det.phase_seconds, vec![0.0; Phase::all().len()]);
        assert_eq!(det.sweep_latency.count(), 0);
        assert_eq!(det.kernel_assemble_seconds, 0.0);
        // Two runs that differ only in timing agree after normalisation.
        let mut again = MetricsObserver::new();
        feed(&mut again);
        let mut other = again.snapshot();
        other.phase_seconds[Phase::Krylov.index()] = 99.0;
        assert_ne!(other, metrics);
        assert_eq!(other.deterministic(), det);
    }

    #[test]
    fn registry_export_tags_the_classes() {
        let mut m = MetricsObserver::new();
        feed(&mut m);
        let registry = m.snapshot().registry();
        assert_eq!(registry.counter("sweeps"), Some(2));
        assert_eq!(registry.counter("sweep_buckets"), Some(2));
        assert_eq!(registry.counter("halo_bytes"), Some(512));
        assert_eq!(registry.gauge("phase_seconds.krylov"), Some(0.125));
        let det = registry.deterministic_only();
        assert_eq!(det.counter("cells_swept"), Some(48));
        assert!(det.gauge("phase_seconds.krylov").is_none());
        assert!(det.histogram("cells_per_sweep").is_some());
        assert!(det.histogram("sweep_latency_seconds").is_none());
    }

    #[test]
    fn metrics_json_and_table_render() {
        let mut m = MetricsObserver::new();
        feed(&mut m);
        let metrics = m.snapshot();
        let json = metrics.to_json();
        let parsed = unsnap_obs::reader::parse(&json).unwrap();
        let det = parsed.get("deterministic").unwrap();
        assert_eq!(det.get("sweeps").unwrap().as_usize(), Some(2));
        assert_eq!(
            det.get("phase_starts")
                .unwrap()
                .get("source_assembly")
                .unwrap()
                .as_usize(),
            Some(1)
        );
        let wall = parsed.get("wallclock").unwrap();
        assert_eq!(
            wall.get("phase_seconds")
                .unwrap()
                .get("krylov")
                .unwrap()
                .as_f64(),
            Some(0.125)
        );
        assert!(wall
            .get("sweep_latency_seconds")
            .unwrap()
            .get("p95")
            .is_some());

        let table = metrics.phase_table();
        assert!(table.contains("krylov"));
        assert!(table.contains("total"));
    }

    #[test]
    fn jsonl_observer_streams_every_event() {
        let mut buf = Vec::new();
        {
            let mut observer = JsonlObserver::new(JsonlWriter::new(&mut buf));
            feed(&mut observer);
            assert_eq!(observer.events_written(), 17);
            observer.finish().unwrap();
        }
        let docs = read_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(docs.len(), 17);
        assert_eq!(docs[0].get("event").unwrap().as_str(), Some("outer_start"));
        let sweep = &docs[3];
        assert_eq!(sweep.get("event").unwrap().as_str(), Some("sweep"));
        assert_eq!(sweep.get("cells").unwrap().as_u64(), Some(32));
        assert!(sweep.get("rank").is_none());
        let rank_sweep = &docs[8];
        assert_eq!(rank_sweep.get("event").unwrap().as_str(), Some("sweep"));
        assert_eq!(rank_sweep.get("rank").unwrap().as_usize(), Some(2));
        let halo = &docs[7];
        assert_eq!(halo.get("event").unwrap().as_str(), Some("halo_exchange"));
        assert_eq!(halo.get("bytes").unwrap().as_u64(), Some(512));
    }
}
