//! Cooperative cancellation of in-flight solves.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between the party
//! driving a solve (a server worker, a bench harness, a test) and the
//! party that may want to stop it (a request handler, a signal handler).
//! The solver polls the token at **outer-iteration boundaries** — the
//! same seam the observer's `on_outer_start` hook fires on — so
//! cancellation never tears a sweep in half: the flux state is always a
//! consistent "as of outer iteration `k`" snapshot when the solve bails
//! out with [`Error::Cancelled`](crate::error::Error::Cancelled).
//!
//! The token is *advisory*: nothing is interrupted preemptively, and a
//! solve that is between outer boundaries (inside a sweep or a Krylov
//! iteration) finishes that outer before observing the flag.  That makes
//! cancellation latency one outer iteration — bounded and cheap for the
//! iteration structures the workspace runs (many outers of few inners),
//! and it keeps the determinism contract intact: a solve either
//! completes bit-for-bit identically, or reports exactly which outer it
//! stopped at.
//!
//! ```
//! use unsnap_core::builder::ProblemBuilder;
//! use unsnap_core::cancel::CancelToken;
//! use unsnap_core::error::Error;
//!
//! let mut session = ProblemBuilder::tiny().session().unwrap();
//! let token = CancelToken::new();
//! session.solver_mut().set_cancel_token(token.clone());
//! token.cancel(); // cancelled before the first outer even starts
//! assert!(matches!(
//!     session.run(),
//!     Err(Error::Cancelled { outer: 0 })
//! ));
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cooperative cancellation flag.
///
/// Clones share one underlying flag; cancelling any clone cancels them
/// all.  See the [module docs](self) for the polling contract.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation.  Idempotent; takes effect at the solve's
    /// next outer-iteration boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Clear the flag so the token can arm another run (tests and
    /// pooled workers reuse tokens; fresh jobs should prefer fresh
    /// tokens).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        token.reset();
        assert!(!token.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("cancel thread");
        assert!(token.is_cancelled());
    }
}
