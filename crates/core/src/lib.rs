//! # unsnap-core
//!
//! The core of the UnSNAP mini-app: discrete-ordinates angular quadrature,
//! multigroup artificial problem data, the discontinuous Galerkin
//! assemble/solve kernel, the threaded sweep driver with its selectable
//! concurrency schemes, and the structured diamond-difference (SNAP)
//! baseline.
//!
//! The crate reproduces the computational structure of Figure 2 of the
//! paper:
//!
//! ```text
//! for all angular directions do
//!   for all elements in angle schedule do
//!     for all energy groups do
//!       Assemble matrix A from Sn quadrature, cross sections and
//!         element basis functions
//!       Assemble vector b from source terms, element basis functions
//!         and upwind neighbour ψ
//!       Solve A ψ = b
//! ```
//!
//! with the two middle loops interchangeable and threadable according to a
//! [`unsnap_sweep::ConcurrencyScheme`], and the storage layout of the flux
//! and source arrays following the loop order (the data-layout experiment
//! of Figures 3 and 4).
//!
//! ## Module map
//!
//! * [`error`] — the workspace-wide typed [`enum@Error`]/[`Result`]: one
//!   variant per failure domain, `From` conversions from every crate's
//!   local error type.
//! * [`cancel`] — [`CancelToken`]: cooperative cancellation of in-flight
//!   solves, polled at outer-iteration boundaries.
//! * [`wire`] — the canonical JSON wire format for problem
//!   configurations (serve requests, cross-process tooling) and the
//!   byte stream behind [`Problem::canonical_hash`].
//! * [`builder`] — [`ProblemBuilder`]: validating, grouped construction
//!   of [`Problem`]s with cross-field invariants checked up front.
//! * [`session`] — the observable solve API: [`Session`],
//!   [`RunObserver`] and [`RecordingObserver`] stream per-iteration
//!   progress instead of returning a black-box summary; the
//!   [`session::Phase`] taxonomy and phase-tracing hooks live
//!   here too.
//! * [`metrics`] — the aggregation layer over the observer stream:
//!   [`metrics::MetricsObserver`] folds events into a
//!   [`metrics::RunMetrics`] snapshot (attached to every
//!   [`SolveOutcome`]), and
//!   [`metrics::JsonlObserver`] streams the raw events
//!   to a JSONL run log.
//! * [`json`] — a minimal hand-rolled JSON writer backing
//!   [`SolveOutcome::to_json`]; hosted by `unsnap-obs` since PR 6 and
//!   re-exported here so existing `unsnap_core::json` paths keep
//!   working.
//! * [`angular`] — Sn product quadrature over the unit sphere (angles per
//!   octant, direction cosines, weights, octant bookkeeping).
//! * [`data`] — artificial multigroup cross sections, materials and fixed
//!   source ("Source and Material Option 1" of the paper's experiments).
//! * [`layout`] — flat storage with explicit extent ordering for the
//!   angular flux, scalar flux and source arrays.
//! * [`kernel`] — the per-element/angle/group assemble + solve kernel.
//! * [`solver`] — the sweep driver: inner/outer iteration structure,
//!   concurrency schemes, timers and convergence monitoring.
//! * [`strategy`] — pluggable inner-iteration strategies: classic source
//!   iteration, DSA-accelerated source iteration and
//!   sweep-preconditioned GMRES (via `unsnap-krylov`), plus the
//!   [`AcceleratorKind`](strategy::AcceleratorKind) knob.
//! * [`dsa`] — restriction/prolongation glue between the DG flux
//!   storage and the low-order diffusion solver of `unsnap-accel`.
//! * [`fd`] — the structured diamond-difference baseline (the original
//!   SNAP spatial discretisation) for the FD-versus-FEM comparison.
//! * [`preassembly`] — the pre-assembled / pre-factorised matrix ablation
//!   discussed in §IV-B.1 of the paper.
//! * [`problem`] — problem definitions and the paper's experiment presets.
//! * [`report`] — Table I data and small formatting helpers used by the
//!   benchmark binaries.
//!
//! ## Quickstart
//!
//! ```
//! use unsnap_core::builder::ProblemBuilder;
//!
//! // A tiny problem that runs in well under a second: validate it up
//! // front, open a session, run it.
//! let mut session = ProblemBuilder::tiny().session().unwrap();
//! let outcome = session.run().unwrap();
//! assert!(outcome.scalar_flux_total() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod angular;
pub mod builder;
pub mod cancel;
pub mod data;
pub mod dsa;
pub mod error;
pub mod fd;
pub mod kernel;
pub mod layout;
pub mod metrics;
pub mod preassembly;
pub mod problem;
pub mod report;
pub mod session;
pub mod solver;
pub mod strategy;
pub mod trace;
pub mod wire;

/// The hand-rolled JSON writer (moved to `unsnap-obs` in PR 6;
/// re-exported so `unsnap_core::json::*` call sites keep compiling).
pub use unsnap_obs::json;

pub use angular::{AngularQuadrature, Direction};
pub use builder::{
    AccelConfig, ExecutionConfig, GridConfig, IterationConfig, PhysicsConfig, ProblemBuilder,
};
pub use cancel::CancelToken;
pub use data::{CrossSections, MaterialOption, SourceOption};
pub use error::{Error, Result};
pub use layout::{FluxLayout, FluxStorage};
pub use metrics::{JsonlObserver, MetricsObserver, RunMetrics};
pub use problem::Problem;
pub use session::{
    NoopObserver, Phase, ProgressObserver, RecordingObserver, RunObserver, Session, TeeObserver,
};
pub use solver::{RunStats, SolveOutcome, TransportSolver};
pub use strategy::{IterationStrategy, SourceIteration, StrategyKind, SweepGmres};
