//! The workspace-wide error type.
//!
//! Every fallible path in the UnSNAP workspace — problem validation, mesh
//! decomposition, dense factorisation, sweep scheduling, Krylov solves,
//! the simulated communication layer — funnels into one structured
//! [`enum@Error`], with a variant per failure domain and `From`
//! conversions from each crate's local error type.  Callers match on
//! variants (and their payloads: offending field, pivot magnitude,
//! iteration number) instead of parsing strings; `?` works across crate
//! boundaries because the conversions are lossless wrappers.
//!
//! The convention mirrors production Rust services: leaf crates own small
//! domain-specific error enums (`LinalgError`, `ScheduleError`,
//! `KrylovError`, `MeshError`, `CommError`), and the crate that owns the
//! public API surface (`unsnap-core`) owns the aggregate.  The `comm`
//! crate sits *above* core in the dependency graph, so its conversion into
//! [`Error::Comm`] lives in `unsnap-comm` rather than here.

use std::fmt;

use unsnap_krylov::KrylovError;
use unsnap_linalg::LinalgError;
use unsnap_mesh::MeshError;
use unsnap_sweep::ScheduleError;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// A structured error covering every failure domain of the workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A [`Problem`](crate::problem::Problem) field (or a combination of
    /// fields) failed validation.
    InvalidProblem {
        /// The offending field, named as in the `Problem` struct (for a
        /// cross-field invariant, the field whose change would most
        /// naturally fix it).
        field: &'static str,
        /// Human-readable explanation of the constraint that failed.
        reason: String,
    },
    /// Mesh construction or domain decomposition failed.
    Mesh(MeshError),
    /// A local dense system was numerically singular.
    Singular {
        /// Column at which the factorisation broke down (0-based).
        column: usize,
        /// Magnitude of the best available pivot.
        pivot: f64,
    },
    /// Any other dense linear-algebra failure (dimension mismatches,
    /// batch indexing).
    Linalg(LinalgError),
    /// A Krylov solve broke down before reaching its tolerance.
    KrylovBreakdown {
        /// Iteration at which the breakdown occurred.
        iteration: usize,
        /// Relative residual estimate at the point of breakdown.
        residual: f64,
    },
    /// Any other Krylov failure (dimension or configuration problems,
    /// loss of positive definiteness in CG).
    Krylov(KrylovError),
    /// Sweep-schedule construction failed (cyclic dependency graph).
    Schedule {
        /// What was being scheduled (e.g. `"angle [0.5, 0.6, 0.6]"` or
        /// `"rank 3"`); empty when no context was attached.
        context: String,
        /// The underlying schedule failure.
        source: ScheduleError,
    },
    /// The (simulated) communication layer failed.
    Comm {
        /// Human-readable description of the communication failure.
        reason: String,
    },
    /// The execution environment could not be set up (e.g. the worker
    /// thread pool failed to build).
    Execution {
        /// Human-readable description of the environment failure.
        reason: String,
    },
    /// The solve was cooperatively cancelled via a
    /// [`CancelToken`](crate::cancel::CancelToken) before it completed.
    /// Cancellation is observed at outer-iteration boundaries only, so
    /// the flux state is a consistent snapshot as of outer `outer`.
    Cancelled {
        /// The outer iteration at whose boundary the cancellation was
        /// observed (0 = cancelled before the first outer ran).
        outer: usize,
    },
}

impl Error {
    /// Shorthand for an [`Error::InvalidProblem`] with a formatted reason.
    pub fn invalid_problem(field: &'static str, reason: impl Into<String>) -> Self {
        Error::InvalidProblem {
            field,
            reason: reason.into(),
        }
    }

    /// Attach scheduling context (which angle, which rank) to a
    /// [`ScheduleError`].
    pub fn schedule(context: impl Into<String>, source: ScheduleError) -> Self {
        Error::Schedule {
            context: context.into(),
            source,
        }
    }

    /// The `Problem` field an [`Error::InvalidProblem`] refers to, if any.
    pub fn invalid_field(&self) -> Option<&'static str> {
        match self {
            Error::InvalidProblem { field, .. } => Some(field),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidProblem { field, reason } => {
                write!(f, "invalid problem: {field}: {reason}")
            }
            Error::Mesh(e) => write!(f, "mesh error: {e}"),
            Error::Singular { column, pivot } => write!(
                f,
                "local system is numerically singular at column {column} (|pivot| = {pivot:.3e})"
            ),
            Error::Linalg(e) => write!(f, "linear algebra error: {e}"),
            Error::KrylovBreakdown {
                iteration,
                residual,
            } => write!(
                f,
                "Krylov solve broke down at iteration {iteration} \
                 (relative residual {residual:.3e})"
            ),
            Error::Krylov(e) => write!(f, "Krylov error: {e}"),
            Error::Schedule { context, source } => {
                if context.is_empty() {
                    write!(f, "schedule error: {source}")
                } else {
                    write!(f, "schedule error ({context}): {source}")
                }
            }
            Error::Comm { reason } => write!(f, "communication error: {reason}"),
            Error::Execution { reason } => write!(f, "execution environment error: {reason}"),
            Error::Cancelled { outer } => {
                write!(f, "solve cancelled at outer-iteration boundary {outer}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Mesh(e) => Some(e),
            Error::Linalg(e) => Some(e),
            Error::Krylov(e) => Some(e),
            Error::Schedule { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<MeshError> for Error {
    fn from(e: MeshError) -> Self {
        Error::Mesh(e)
    }
}

impl From<LinalgError> for Error {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::Singular { column, pivot } => Error::Singular { column, pivot },
            other => Error::Linalg(other),
        }
    }
}

impl From<KrylovError> for Error {
    fn from(e: KrylovError) -> Self {
        match e {
            KrylovError::Breakdown {
                at_iteration,
                residual,
            } => Error::KrylovBreakdown {
                iteration: at_iteration,
                residual,
            },
            other => Error::Krylov(other),
        }
    }
}

impl From<ScheduleError> for Error {
    fn from(source: ScheduleError) -> Self {
        Error::Schedule {
            context: String::new(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singular_linalg_errors_flatten() {
        let e: Error = LinalgError::Singular {
            column: 4,
            pivot: 1e-18,
        }
        .into();
        assert!(matches!(e, Error::Singular { column: 4, .. }));
        assert!(e.to_string().contains("column 4"));
    }

    #[test]
    fn other_linalg_errors_wrap() {
        let e: Error = LinalgError::NotSquare { rows: 2, cols: 3 }.into();
        assert!(matches!(e, Error::Linalg(_)));
        assert!(e.to_string().contains("not square"));
    }

    #[test]
    fn krylov_breakdown_flattens() {
        let e: Error = KrylovError::Breakdown {
            at_iteration: 7,
            residual: 0.25,
        }
        .into();
        assert_eq!(
            e,
            Error::KrylovBreakdown {
                iteration: 7,
                residual: 0.25
            }
        );
    }

    #[test]
    fn schedule_errors_carry_context() {
        let source = ScheduleError::CyclicDependency {
            unscheduled: vec![1, 2],
        };
        let e = Error::schedule("angle [1, 0, 0]", source.clone());
        assert!(e.to_string().contains("angle [1, 0, 0]"));
        let bare: Error = source.into();
        assert!(matches!(bare, Error::Schedule { ref context, .. } if context.is_empty()));
    }

    #[test]
    fn mesh_errors_wrap() {
        let e: Error = MeshError::EmptyDecomposition { npx: 0, npy: 2 }.into();
        assert!(matches!(e, Error::Mesh(_)));
        assert!(e.to_string().starts_with("mesh error"));
    }

    #[test]
    fn cancelled_names_the_boundary() {
        let e = Error::Cancelled { outer: 3 };
        assert!(e.to_string().contains("boundary 3"));
        assert_eq!(e.invalid_field(), None);
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn invalid_problem_helpers() {
        let e = Error::invalid_problem("nx", "must be positive");
        assert_eq!(e.invalid_field(), Some("nx"));
        assert!(e.to_string().contains("nx"));
        assert_eq!(Error::Comm { reason: "x".into() }.invalid_field(), None);
    }

    #[test]
    fn error_is_std_error_with_sources() {
        let e: Error = LinalgError::NotSquare { rows: 1, cols: 2 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::invalid_problem("ny", "zero");
        assert!(std::error::Error::source(&e).is_none());
    }
}
