//! Discrete-ordinates (Sn) angular quadrature.
//!
//! The transport equation is discretised in angle by evaluating the angular
//! flux along a finite set of directions (ordinates) with associated
//! quadrature weights; the scalar flux is the weighted sum of the angular
//! fluxes.  Like SNAP, UnSNAP treats the eight octants of the unit sphere
//! separately: angles within an octant may be computed concurrently, while
//! octants are swept in turn (§III of the paper).
//!
//! The quadrature implemented here is a product rule per octant:
//! Gauss–Legendre in the polar cosine `ξ = Ω_z` crossed with Chebyshev
//! (equally spaced, equally weighted) azimuthal angles.  The rule is exact
//! for the isotropic moments the UnSNAP scattering treatment needs, is
//! defined for any requested number of angles per octant (matching SNAP's
//! free `nang` parameter), and never produces direction cosines equal to
//! zero — every ordinate has a strictly positive or negative component
//! along each axis, so the sweep classification is unambiguous.

use serde::{Deserialize, Serialize};

use unsnap_fem::quadrature::gauss_legendre;

/// One discrete ordinate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Direction {
    /// Unit direction vector `(Ω_x, Ω_y, Ω_z)`.
    pub omega: [f64; 3],
    /// Quadrature weight.  Weights over the full sphere sum to one, so the
    /// scalar flux is simply `Σ w ψ`.
    pub weight: f64,
    /// Octant index 0..8 (bit 0: x negative, bit 1: y negative, bit 2: z
    /// negative — octant 0 is the (+,+,+) octant).
    pub octant: usize,
    /// Index of this angle within its octant (0..angles_per_octant).
    pub index_in_octant: usize,
}

/// A complete Sn quadrature set over the unit sphere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AngularQuadrature {
    angles_per_octant: usize,
    directions: Vec<Direction>,
}

impl AngularQuadrature {
    /// Build a product quadrature with `angles_per_octant` ordinates per
    /// octant (so `8 × angles_per_octant` in total).
    ///
    /// The number of polar levels is chosen as the largest integer `np`
    /// with `np² ≤ n`; remaining angles are distributed over the azimuthal
    /// index of the last level, so any positive `n` is accepted.
    ///
    /// # Panics
    /// Panics if `angles_per_octant == 0`.
    pub fn product(angles_per_octant: usize) -> Self {
        assert!(angles_per_octant > 0, "need at least one angle per octant");
        let n = angles_per_octant;

        // Choose a polar × azimuthal factorisation: np levels with roughly
        // n / np azimuthal angles each.
        let np = (1..=n).rev().find(|&p| p * p <= n).unwrap_or(1);
        let base_az = n / np;
        let extra = n % np; // the first `extra` levels get one more angle

        // Gauss–Legendre in the polar cosine over (0, 1).
        let polar = gauss_legendre(np);

        let mut octant0 = Vec::with_capacity(n);
        for (level, (&xi_ref, &w_polar)) in
            polar.points.iter().zip(polar.weights.iter()).enumerate()
        {
            // Map the reference point from [-1, 1] to (0, 1): ξ = (x+1)/2,
            // weight scales by 1/2 so polar weights sum to 1.
            let xi = 0.5 * (xi_ref + 1.0);
            let w_level = 0.5 * w_polar;
            let n_az = base_az + usize::from(level < extra);
            let sin_theta = (1.0 - xi * xi).sqrt();
            for a in 0..n_az {
                // Chebyshev azimuthal points strictly inside (0, π/2).
                let phi = std::f64::consts::FRAC_PI_2 * (a as f64 + 0.5) / n_az as f64;
                let omega = [sin_theta * phi.cos(), sin_theta * phi.sin(), xi];
                // Octant weight: 1/8 of the sphere, level weight split
                // evenly over its azimuthal angles.
                let weight = 0.125 * w_level / n_az as f64;
                octant0.push((omega, weight));
            }
        }
        debug_assert_eq!(octant0.len(), n);

        // Reflect octant 0 into the other seven.
        let mut directions = Vec::with_capacity(8 * n);
        for octant in 0..8usize {
            let sx = if octant & 1 == 0 { 1.0 } else { -1.0 };
            let sy = if octant & 2 == 0 { 1.0 } else { -1.0 };
            let sz = if octant & 4 == 0 { 1.0 } else { -1.0 };
            for (index_in_octant, &(omega, weight)) in octant0.iter().enumerate() {
                directions.push(Direction {
                    omega: [omega[0] * sx, omega[1] * sy, omega[2] * sz],
                    weight,
                    octant,
                    index_in_octant,
                });
            }
        }

        Self {
            angles_per_octant: n,
            directions,
        }
    }

    /// Number of angles per octant.
    pub fn angles_per_octant(&self) -> usize {
        self.angles_per_octant
    }

    /// Total number of ordinates (`8 ×` angles per octant).
    pub fn num_angles(&self) -> usize {
        self.directions.len()
    }

    /// All ordinates, octant-major (all angles of octant 0, then octant 1,
    /// …).
    pub fn directions(&self) -> &[Direction] {
        &self.directions
    }

    /// The ordinates of one octant.
    pub fn octant(&self, octant: usize) -> &[Direction] {
        let n = self.angles_per_octant;
        &self.directions[octant * n..(octant + 1) * n]
    }

    /// Global angle index of `(octant, index_in_octant)`.
    pub fn angle_index(&self, octant: usize, index_in_octant: usize) -> usize {
        octant * self.angles_per_octant + index_in_octant
    }

    /// Sum of all weights (should be 1 by construction).
    pub fn total_weight(&self) -> f64 {
        self.directions.iter().map(|d| d.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_octants() {
        for n in [1usize, 3, 6, 10, 36] {
            let q = AngularQuadrature::product(n);
            assert_eq!(q.angles_per_octant(), n);
            assert_eq!(q.num_angles(), 8 * n);
            for oct in 0..8 {
                assert_eq!(q.octant(oct).len(), n);
                for (i, d) in q.octant(oct).iter().enumerate() {
                    assert_eq!(d.octant, oct);
                    assert_eq!(d.index_in_octant, i);
                    assert_eq!(
                        q.angle_index(oct, i),
                        oct * n + i,
                        "octant-major global index"
                    );
                }
            }
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for n in [1usize, 4, 10, 36] {
            let q = AngularQuadrature::product(n);
            assert!((q.total_weight() - 1.0).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn directions_are_unit_vectors_with_nonzero_components() {
        let q = AngularQuadrature::product(10);
        for d in q.directions() {
            let norm: f64 = d.omega.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
            for c in d.omega {
                assert!(
                    c.abs() > 1e-6,
                    "no grazing ordinates allowed: {:?}",
                    d.omega
                );
            }
            assert!(d.weight > 0.0);
        }
    }

    #[test]
    fn octant_signs_are_correct() {
        let q = AngularQuadrature::product(4);
        for d in q.directions() {
            let sx = d.omega[0] > 0.0;
            let sy = d.omega[1] > 0.0;
            let sz = d.omega[2] > 0.0;
            assert_eq!(sx, d.octant & 1 == 0);
            assert_eq!(sy, d.octant & 2 == 0);
            assert_eq!(sz, d.octant & 4 == 0);
        }
    }

    #[test]
    fn first_moment_vanishes_by_symmetry() {
        // ∫ Ω dΩ = 0: the eight-fold reflection makes the odd moments
        // cancel exactly.
        let q = AngularQuadrature::product(9);
        let mut m = [0.0f64; 3];
        for d in q.directions() {
            for c in 0..3 {
                m[c] += d.weight * d.omega[c];
            }
        }
        for c in 0..3 {
            assert!(m[c].abs() < 1e-14);
        }
    }

    #[test]
    fn second_moment_is_isotropic() {
        // ∫ Ω_i Ω_j dΩ / ∫ dΩ = δ_ij / 3 for a good quadrature.
        let q = AngularQuadrature::product(36);
        for i in 0..3 {
            for j in 0..3 {
                let m: f64 = q
                    .directions()
                    .iter()
                    .map(|d| d.weight * d.omega[i] * d.omega[j])
                    .sum();
                let expected = if i == j { 1.0 / 3.0 } else { 0.0 };
                assert!(
                    (m - expected).abs() < 2e-3,
                    "moment ({i},{j}) = {m}, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn paper_quadrature_sizes_work() {
        // Figure 3/4 problem: 36 angles per octant; Table II problem: 10.
        for n in [36usize, 10] {
            let q = AngularQuadrature::product(n);
            assert_eq!(q.num_angles(), 8 * n);
            assert!((q.total_weight() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn zero_angles_panics() {
        let _ = AngularQuadrature::product(0);
    }
}
