//! A minimal HTTP/1.1 layer over `std::net`.
//!
//! The workspace vendors its dependencies, so there is no tokio, hyper
//! or axum to lean on; this module hand-rolls exactly the slice of
//! HTTP/1.1 the job API needs and nothing more:
//!
//! * request parsing — request line, headers, `Content-Length` bodies
//!   (the only kind the API accepts);
//! * fixed-length responses with a JSON body and `Connection: close`;
//! * chunked (`Transfer-Encoding: chunked`) responses via
//!   [`ChunkedWriter`], for the live JSONL event stream whose length is
//!   unknown while the solve is still running;
//! * a tiny blocking client ([`request`]) used by the tests and the
//!   `loadgen` bench bin, which also decodes chunked bodies.
//!
//! Every exchange is one-request-per-connection (`Connection: close`):
//! simpler to reason about, and the job API's conversational state lives
//! in job IDs, not connections.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Maximum accepted request body (1 MiB — problem documents are a few
/// hundred bytes; anything larger is a client error, not a workload).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path component of the request target, with any query string
    /// split off into [`Request::query`].
    pub path: String,
    /// The raw query string (after `?`, undecoded), if any.  The API's
    /// only query parameter is `/v1/metrics?format=prometheus`.
    pub query: Option<String>,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a (lower-cased) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn bad_request(reason: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason.into())
}

/// Read one HTTP/1.1 request from a buffered stream.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Request> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a request line",
        ));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad_request("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| bad_request("request line has no path"))?;
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), Some(query.to_string())),
        None => (target.to_string(), None),
    };
    let version = parts
        .next()
        .ok_or_else(|| bad_request("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad_request(format!("unsupported version '{version}'")));
    }

    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        let (name, value) = header
            .split_once(':')
            .ok_or_else(|| bad_request(format!("malformed header line '{header}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(raw) = request.header("content-length") {
        let length: usize = raw
            .parse()
            .map_err(|_| bad_request(format!("unparsable Content-Length '{raw}'")))?;
        if length > MAX_BODY_BYTES {
            return Err(bad_request(format!(
                "request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )));
        }
        let mut body = vec![0_u8; length];
        reader.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(request)
}

/// The canonical reason phrase for the status codes the API emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete fixed-length JSON response and flush it.
pub fn write_response<W: Write>(writer: &mut W, status: u16, body: &str) -> io::Result<()> {
    write_response_typed(writer, status, "application/json", body)
}

/// Write a complete fixed-length response with an explicit content type
/// (the Prometheus exposition endpoint serves `text/plain`).
pub fn write_response_typed<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_reason(status),
        body.len(),
    )?;
    writer.flush()
}

/// A `Transfer-Encoding: chunked` response in progress: one chunk per
/// [`ChunkedWriter::write_chunk`], terminated by
/// [`ChunkedWriter::finish`].
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    writer: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Write the status line and chunked headers, returning the
    /// in-progress response.
    pub fn begin(mut writer: W, status: u16, content_type: &str) -> io::Result<Self> {
        write!(
            writer,
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_reason(status),
        )?;
        writer.flush()?;
        Ok(Self { writer })
    }

    /// Write one chunk (empty chunks are skipped — an empty chunk would
    /// terminate the stream early in the chunked framing).
    pub fn write_chunk(&mut self, data: &str) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.writer, "{:x}\r\n{data}\r\n", data.len())?;
        self.writer.flush()
    }

    /// Terminate the chunked stream.
    pub fn finish(mut self) -> io::Result<()> {
        self.writer.write_all(b"0\r\n\r\n")?;
        self.writer.flush()
    }
}

/// A decoded HTTP response from the blocking client.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code of the response line.
    pub status: u16,
    /// The body, with chunked framing already removed.
    pub body: String,
}

/// Perform one blocking HTTP exchange: connect, send `method path` with
/// an optional JSON body, read the full response (decoding chunked
/// bodies), return it.  Used by tests and the `loadgen` bench bin.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let mut writer = stream.try_clone()?;
    let body_bytes = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: unsnap\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body_bytes}",
        body_bytes.len(),
    )?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_request(format!("malformed status line '{status_line}'")))?;

    let mut chunked = false;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else if name == "content-length" {
                content_length = value.parse().ok();
            }
        }
    }

    let body = if chunked {
        let mut decoded = Vec::new();
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break; // connection closed at a chunk boundary
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad_request(format!("malformed chunk size '{size_line}'")))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0_u8; size + 2]; // data + CRLF
            reader.read_exact(&mut chunk)?;
            chunk.truncate(size);
            decoded.extend_from_slice(&chunk);
        }
        decoded
    } else if let Some(length) = content_length {
        let mut body = vec![0_u8; length];
        reader.read_exact(&mut body)?;
        body
    } else {
        let mut body = Vec::new();
        reader.read_to_end(&mut body)?;
        body
    };
    Ok(HttpResponse {
        status,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let request = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/solve");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.body, b"abcd");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let raw = b"GET /v1/metrics HTTP/1.1\r\n\r\n";
        let request = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.query, None);
        assert!(request.body.is_empty());
    }

    #[test]
    fn splits_the_query_string_off_the_path() {
        let raw = b"GET /v1/metrics?format=prometheus HTTP/1.1\r\n\r\n";
        let request = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(request.path, "/v1/metrics");
        assert_eq!(request.query.as_deref(), Some("format=prometheus"));
    }

    #[test]
    fn typed_response_carries_its_content_type() {
        let mut out = Vec::new();
        write_response_typed(&mut out, 200, "text/plain; version=0.0.4", "a 1\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.ends_with("a 1\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_request(&mut Cursor::new(&b""[..])).is_err());
        assert!(read_request(&mut Cursor::new(&b"NOT-HTTP\r\n\r\n"[..])).is_err());
        let oversize = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20);
        assert!(read_request(&mut Cursor::new(oversize.as_bytes())).is_err());
    }

    #[test]
    fn fixed_response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn chunked_framing_round_trips() {
        let mut out = Vec::new();
        let mut chunked = ChunkedWriter::begin(&mut out, 200, "application/jsonl").unwrap();
        chunked.write_chunk("hello\n").unwrap();
        chunked.write_chunk("").unwrap(); // skipped, not a terminator
        chunked.write_chunk("world\n").unwrap();
        chunked.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("6\r\nhello\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }

    #[test]
    fn status_reasons_cover_the_api() {
        for code in [200, 202, 400, 404, 405, 409, 500, 503] {
            assert_ne!(status_reason(code), "Unknown");
        }
        assert_eq!(status_reason(418), "Unknown");
    }
}
