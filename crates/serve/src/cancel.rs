//! The server's cancellation policy over the core [`CancelToken`].
//!
//! `DELETE /v1/jobs/{id}` means different things depending on where the
//! job is in its lifecycle, and the response should say which happened.
//! This module names the three dispositions and derives them from the
//! *prior* state [`JobQueue::cancel`](crate::queue::JobQueue::cancel)
//! reports for the request (the prior state is what distinguishes
//! "cancelled by this request" from "was already cancelled"):
//!
//! | job was…  | what happens                                           | disposition |
//! |-----------|--------------------------------------------------------|-------------|
//! | queued    | removed from the FIFO, terminal immediately            | [`Immediate`](CancelDisposition::Immediate) |
//! | running   | its [`CancelToken`] is raised; the solver observes it at the next outer-iteration boundary | [`Requested`](CancelDisposition::Requested) |
//! | terminal  | nothing — `Done`/`Failed`/`Cancelled` are final        | [`AlreadyTerminal`](CancelDisposition::AlreadyTerminal) |
//! | resumable | nothing — the job is not running; leave its run log be (a job that should never resume is simply never resumed) | [`NotCancellable`](CancelDisposition::NotCancellable) |
//!
//! The *cooperative* half of the contract lives in
//! [`unsnap_core::cancel`]: tokens are polled only at outer-iteration
//! boundaries, so a cancelled solve always leaves a consistent flux
//! snapshot and the worker thread survives to take the next job.

pub use unsnap_core::cancel::CancelToken;

use crate::queue::JobState;

/// What a `DELETE /v1/jobs/{id}` actually did (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelDisposition {
    /// The job was still queued: it is `Cancelled` now.
    Immediate,
    /// The job was running: cancellation lands at the solver's next
    /// outer-iteration boundary.
    Requested,
    /// The job was already terminal; nothing changed.
    AlreadyTerminal,
    /// The job was `Resumable` (recovered from a run log, not running):
    /// there is nothing to cancel, and its log is left untouched.
    NotCancellable,
}

impl CancelDisposition {
    /// Derive the disposition from the state a job was in when the
    /// cancel request arrived.
    pub fn from_prior_state(before: JobState) -> Self {
        match before {
            JobState::Queued => CancelDisposition::Immediate,
            JobState::Running => CancelDisposition::Requested,
            JobState::Resumable => CancelDisposition::NotCancellable,
            JobState::Done | JobState::Failed | JobState::Cancelled => {
                CancelDisposition::AlreadyTerminal
            }
        }
    }

    /// The wire label of the disposition.
    pub fn label(&self) -> &'static str {
        match self {
            CancelDisposition::Immediate => "cancelled",
            CancelDisposition::Requested => "cancel-requested",
            CancelDisposition::AlreadyTerminal => "already-terminal",
            CancelDisposition::NotCancellable => "not-cancellable",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispositions_match_the_state_machine() {
        assert_eq!(
            CancelDisposition::from_prior_state(JobState::Queued),
            CancelDisposition::Immediate
        );
        assert_eq!(
            CancelDisposition::from_prior_state(JobState::Running),
            CancelDisposition::Requested
        );
        for terminal in [JobState::Done, JobState::Failed, JobState::Cancelled] {
            assert_eq!(
                CancelDisposition::from_prior_state(terminal),
                CancelDisposition::AlreadyTerminal
            );
        }
        assert_eq!(
            CancelDisposition::from_prior_state(JobState::Resumable),
            CancelDisposition::NotCancellable
        );
        assert_eq!(CancelDisposition::Immediate.label(), "cancelled");
    }
}
