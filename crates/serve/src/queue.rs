//! The bounded job queue and its worker pool.
//!
//! Solve requests do not run on the connection thread: they enter a
//! bounded FIFO and a fixed pool of worker threads drains it, so a burst
//! of requests degrades into queueing latency instead of unbounded
//! concurrency.  Each worker runs one solve at a time through the
//! ordinary [`Session`] API; the solve itself parallelises internally
//! through the problem's own rayon pool exactly as a CLI run would
//! (`RAYON_NUM_THREADS` force-overrides every pool, as in the CI
//! determinism matrix), so the worker count bounds *how many solves* run
//! concurrently, not how many threads a solve uses.
//!
//! A job moves through the state machine
//!
//! ```text
//! Resumable ──▶ Queued ──▶ Running ──▶ Done
//!    ▲            │           │  └───▶ Failed
//!    │(restart)   └───────────┴──────▶ Cancelled
//! ```
//!
//! * `Queued → Cancelled` is immediate (the entry leaves the FIFO);
//! * `Running → Cancelled` is cooperative: the job's
//!   [`CancelToken`] is raised and the solver observes it at its next
//!   outer-iteration boundary, surfacing
//!   [`Error::Cancelled`] — the worker then records the state and moves
//!   on to the next job, fully serviceable;
//! * `Done`, `Failed` and `Cancelled` are terminal.
//! * `Resumable` exists only on a queue started with a run-log
//!   directory ([`JobQueue::start_with_runlog`]): jobs checkpoint into
//!   `job-{id}.runlog` as they solve, and a restarted queue re-lists
//!   every interrupted (non-completed) log as a `Resumable` job.
//!   [`JobQueue::resume`] moves it back into the FIFO, where a worker
//!   restores the solver from the last intact checkpoint and finishes
//!   the run — bit-for-bit what the uninterrupted run would have
//!   produced.  `Done` jobs delete their log; cancelled and failed
//!   runs keep theirs so a restart can pick them back up.
//!
//! Every job owns a [`LineChannel`] of its JSONL solve events (fed by a
//! [`JsonlObserver`] during the run, closed with a final `job_done`
//! line), which is what `GET /v1/jobs/{id}/events` tails.  Submission
//! consults the [`ResultStore`] first: a hit births the job directly in
//! `Done` with the cached outcome bytes and no solver work at all.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use unsnap_core::cancel::CancelToken;
use unsnap_core::error::{Error, Result};
use unsnap_core::metrics::JsonlObserver;
use unsnap_core::problem::Problem;
use unsnap_core::session::{Session, TeeObserver};
use unsnap_obs::json::JsonObject;
use unsnap_obs::jsonl::JsonlWriter;
use unsnap_obs::metrics::{Determinism, Histogram, MetricsRegistry};
use unsnap_obs::stream::LineChannel;
use unsnap_runlog::{recover, CheckpointObserver, RunMode, SessionResume};

use crate::store::ResultStore;

/// The lifecycle state of a job (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Recovered from an interrupted run log at startup; waiting for a
    /// [`JobQueue::resume`] call to re-enter the FIFO.
    Resumable,
    /// Waiting in the FIFO.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished successfully; the outcome JSON is available.
    Done,
    /// The solve returned an error other than cancellation.
    Failed,
    /// Cancelled before or during the solve.
    Cancelled,
}

impl JobState {
    /// The wire label (`"queued"`, `"running"`, …).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Resumable => "resumable",
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// `true` once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A point-in-time snapshot of one job, as the status endpoint reports
/// it.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job ID.
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Whether the outcome was served from the result cache.
    pub cached: bool,
    /// The canonical hash of the job's problem (the cache key).
    pub hash: u64,
    /// The rendered outcome JSON (`Done` jobs only).
    pub outcome_json: Option<String>,
    /// The error display string (`Failed`/`Cancelled` jobs).
    pub error: Option<String>,
}

/// The receipt returned by [`JobQueue::submit`].
#[derive(Debug, Clone)]
pub struct SubmitReceipt {
    /// The new job's ID.
    pub id: u64,
    /// The canonical hash of the submitted problem.
    pub hash: u64,
    /// `true` when the result cache satisfied the request (the job is
    /// already `Done`).
    pub cached: bool,
    /// The job's state at submission (`Queued`, or `Done` on a hit).
    pub state: JobState,
}

#[derive(Debug)]
struct JobEntry {
    problem: Problem,
    state: JobState,
    cached: bool,
    hash: u64,
    outcome_json: Option<String>,
    /// The run's span tree as Chrome `trace_event` JSON (`Done` jobs
    /// that actually solved; cache hits replay no work, so no trace).
    trace_json: Option<String>,
    error: Option<String>,
    cancel: CancelToken,
    events: LineChannel,
    /// `Some` once an interrupted run log exists for this job — the
    /// worker resumes from it instead of starting fresh.
    resume_log: Option<PathBuf>,
    /// When the job entered the queue — the anchor of the queue-wait
    /// and time-to-first-event latency histograms.
    submitted_at: Instant,
}

/// Durability settings shared by the workers.
#[derive(Debug, Clone)]
struct RunlogSettings {
    dir: PathBuf,
    every: usize,
}

impl RunlogSettings {
    fn job_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id}.runlog"))
    }
}

#[derive(Debug, Default)]
struct QueueState {
    next_id: u64,
    pending: VecDeque<u64>,
    jobs: HashMap<u64, JobEntry>,
    shutdown: bool,
}

#[derive(Debug)]
struct QueueShared {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
    metrics: Mutex<MetricsRegistry>,
    store: Mutex<ResultStore>,
    runlog: Option<RunlogSettings>,
}

impl QueueShared {
    fn count(&self, name: &str) {
        self.metrics
            .lock()
            .unwrap()
            .counter_add(name, Determinism::Deterministic, 1);
    }

    /// Record one wall-clock latency sample into a histogram created on
    /// first touch with the standard latency bucket scale.
    fn observe_seconds(&self, name: &str, seconds: f64) {
        self.metrics.lock().unwrap().histogram_record(
            name,
            Determinism::WallClock,
            Histogram::latency_seconds,
            seconds,
        );
    }
}

/// The bounded FIFO + worker pool behind `POST /v1/solve` (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct JobQueue {
    shared: Arc<QueueShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobQueue {
    /// Start `workers` worker threads over a FIFO holding at most
    /// `capacity` queued jobs, with a result cache of `cache_capacity`
    /// outcomes and no durability (jobs do not checkpoint).
    pub fn start(workers: usize, capacity: usize, cache_capacity: usize) -> Self {
        Self::start_with_runlog(workers, capacity, cache_capacity, None, 1)
            .expect("queue start without a run-log directory cannot fail")
    }

    /// [`JobQueue::start`] with durability: with `runlog_dir` set, every
    /// job checkpoints into `{dir}/job-{id}.runlog` every
    /// `checkpoint_iters` outer iterations, and startup scans the
    /// directory for interrupted logs, re-listing each as a
    /// [`JobState::Resumable`] job (completed or unreadable logs are
    /// skipped).  Fails with [`Error::Execution`] when the directory
    /// cannot be created or scanned, and with
    /// [`Error::InvalidProblem`] on a zero cadence.
    pub fn start_with_runlog(
        workers: usize,
        capacity: usize,
        cache_capacity: usize,
        runlog_dir: Option<PathBuf>,
        checkpoint_iters: usize,
    ) -> Result<Self> {
        if checkpoint_iters == 0 {
            return Err(Error::invalid_problem(
                "checkpoint_iters",
                "checkpoint cadence must be at least 1",
            ));
        }
        let runlog = runlog_dir.map(|dir| RunlogSettings {
            dir,
            every: checkpoint_iters,
        });
        let mut state = QueueState {
            // Job IDs are client-facing (`/v1/jobs/{id}`); start at 1 so
            // the first submission matches the documented curl flow.
            next_id: 1,
            ..QueueState::default()
        };
        if let Some(settings) = &runlog {
            std::fs::create_dir_all(&settings.dir).map_err(|e| Error::Execution {
                reason: format!(
                    "cannot create run-log directory {}: {e}",
                    settings.dir.display()
                ),
            })?;
            for (id, problem, path) in scan_resumable(&settings.dir)? {
                state.next_id = state.next_id.max(id + 1);
                let hash = problem.canonical_hash();
                state.jobs.insert(
                    id,
                    JobEntry {
                        problem,
                        state: JobState::Resumable,
                        cached: false,
                        hash,
                        outcome_json: None,
                        trace_json: None,
                        error: None,
                        cancel: CancelToken::new(),
                        events: LineChannel::new(),
                        resume_log: Some(path),
                        submitted_at: Instant::now(),
                    },
                );
            }
        }
        let shared = Arc::new(QueueShared {
            state: Mutex::new(state),
            cv: Condvar::new(),
            capacity,
            metrics: Mutex::new(MetricsRegistry::new()),
            store: Mutex::new(ResultStore::new(cache_capacity)),
            runlog,
        });
        let workers = (0..workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("unsnap-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Self {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Submit a problem: cache hit → a job born `Done`; otherwise the
    /// job enters the FIFO, or the call fails with
    /// [`Error::Execution`] (HTTP 503) when the queue is full.
    pub fn submit(&self, problem: Problem) -> Result<SubmitReceipt> {
        let hash = problem.canonical_hash();
        let cached_json = self.shared.store.lock().unwrap().get(hash);
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown {
            return Err(Error::Execution {
                reason: "the job queue is shutting down".to_string(),
            });
        }

        if let Some(outcome_json) = cached_json {
            let id = state.next_id;
            state.next_id += 1;
            let events = LineChannel::new();
            events.push(
                JsonObject::new()
                    .field_str("event", "job_done")
                    .field_str("status", JobState::Done.label())
                    .field_bool("cached", true)
                    .finish(),
            );
            events.close();
            state.jobs.insert(
                id,
                JobEntry {
                    problem,
                    state: JobState::Done,
                    cached: true,
                    hash,
                    outcome_json: Some(outcome_json),
                    trace_json: None,
                    error: None,
                    cancel: CancelToken::new(),
                    events,
                    resume_log: None,
                    submitted_at: Instant::now(),
                },
            );
            drop(state);
            self.shared.count("serve_cache_hits");
            self.shared.count("serve_jobs_submitted");
            return Ok(SubmitReceipt {
                id,
                hash,
                cached: true,
                state: JobState::Done,
            });
        }

        if state.pending.len() >= self.shared.capacity {
            drop(state);
            self.shared.count("serve_queue_rejections");
            return Err(Error::Execution {
                reason: format!(
                    "job queue is full ({} queued, capacity {})",
                    self.shared.capacity, self.shared.capacity
                ),
            });
        }

        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobEntry {
                problem,
                state: JobState::Queued,
                cached: false,
                hash,
                outcome_json: None,
                trace_json: None,
                error: None,
                cancel: CancelToken::new(),
                events: LineChannel::new(),
                resume_log: None,
                submitted_at: Instant::now(),
            },
        );
        state.pending.push_back(id);
        drop(state);
        self.shared.count("serve_cache_misses");
        self.shared.count("serve_jobs_submitted");
        self.shared.cv.notify_one();
        Ok(SubmitReceipt {
            id,
            hash,
            cached: false,
            state: JobState::Queued,
        })
    }

    /// Move a [`JobState::Resumable`] job back into the FIFO, where a
    /// worker restores the solver from its run log's last intact
    /// checkpoint and finishes the run.  Returns the `(before, after)`
    /// state pair, or `None` for an unknown ID; a job in any other
    /// state is left untouched (its state comes back unchanged).
    pub fn resume(&self, id: u64) -> Option<(JobState, JobState)> {
        let mut state = self.shared.state.lock().unwrap();
        let entry = state.jobs.get_mut(&id)?;
        if entry.state != JobState::Resumable {
            return Some((entry.state, entry.state));
        }
        entry.state = JobState::Queued;
        state.pending.push_back(id);
        drop(state);
        self.shared.count("serve_jobs_resumed");
        self.shared.cv.notify_one();
        Some((JobState::Resumable, JobState::Queued))
    }

    /// A snapshot of every job the queue knows about, ordered by ID
    /// (`GET /v1/jobs`) — including `Resumable` jobs recovered from a
    /// previous process's run logs.
    pub fn list(&self) -> Vec<JobStatus> {
        let state = self.shared.state.lock().unwrap();
        let mut ids: Vec<u64> = state.jobs.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .map(|id| {
                let entry = &state.jobs[id];
                JobStatus {
                    id: *id,
                    state: entry.state,
                    cached: entry.cached,
                    hash: entry.hash,
                    outcome_json: entry.outcome_json.clone(),
                    error: entry.error.clone(),
                }
            })
            .collect()
    }

    /// A snapshot of one job, or `None` for an unknown ID.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let state = self.shared.state.lock().unwrap();
        state.jobs.get(&id).map(|entry| JobStatus {
            id,
            state: entry.state,
            cached: entry.cached,
            hash: entry.hash,
            outcome_json: entry.outcome_json.clone(),
            error: entry.error.clone(),
        })
    }

    /// The live event stream of one job (a clone sharing the buffer), or
    /// `None` for an unknown ID.
    pub fn events(&self, id: u64) -> Option<LineChannel> {
        let state = self.shared.state.lock().unwrap();
        state.jobs.get(&id).map(|entry| entry.events.clone())
    }

    /// Request cancellation of a job.  Queued jobs cancel immediately;
    /// running jobs get their token raised and transition at the
    /// solver's next outer-iteration boundary; terminal jobs are left
    /// untouched.  Returns the `(before, after)` state pair of the
    /// request, or `None` for an unknown ID — the *before* state is what
    /// distinguishes "cancelled by this request" from "was already
    /// cancelled".
    pub fn cancel(&self, id: u64) -> Option<(JobState, JobState)> {
        let mut state = self.shared.state.lock().unwrap();
        let entry = state.jobs.get_mut(&id)?;
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.error = Some("cancelled while queued".to_string());
                entry.events.push(
                    JsonObject::new()
                        .field_str("event", "job_done")
                        .field_str("status", JobState::Cancelled.label())
                        .finish(),
                );
                entry.events.close();
                state.pending.retain(|queued| *queued != id);
                drop(state);
                self.shared.count("serve_jobs_cancelled");
                Some((JobState::Queued, JobState::Cancelled))
            }
            JobState::Running => {
                entry.cancel.cancel();
                Some((JobState::Running, JobState::Running))
            }
            terminal => Some((terminal, terminal)),
        }
    }

    /// Count one handled HTTP request (called by the router for every
    /// request, whatever its outcome).
    pub fn record_request(&self) {
        self.shared.count("serve_requests_total");
    }

    /// The metrics registry snapshot as JSON (`/v1/metrics`).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.lock().unwrap().to_json()
    }

    /// The metrics registry snapshot in Prometheus text exposition
    /// format (`/v1/metrics?format=prometheus`).
    pub fn metrics_prometheus(&self) -> String {
        self.shared.metrics.lock().unwrap().to_prometheus()
    }

    /// A `Done` job's span tree as Chrome `trace_event` JSON
    /// (`GET /v1/jobs/{id}/trace`).  Outer `None` = unknown ID; inner
    /// `None` = no trace available (the job has not finished solving,
    /// or it was served from the result cache and replayed no work).
    pub fn trace_json(&self, id: u64) -> Option<Option<String>> {
        let state = self.shared.state.lock().unwrap();
        state.jobs.get(&id).map(|entry| entry.trace_json.clone())
    }

    /// One counter's current value (test and loadgen convenience).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.shared.metrics.lock().unwrap().counter(name)
    }

    /// Stop accepting work, raise every running job's cancel token,
    /// cancel (and close the streams of) still-queued jobs, and join
    /// the workers.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            if state.shutdown {
                return;
            }
            state.shutdown = true;
            state.pending.clear();
            for entry in state.jobs.values_mut() {
                match entry.state {
                    JobState::Running => entry.cancel.cancel(),
                    JobState::Queued => {
                        entry.state = JobState::Cancelled;
                        entry.error = Some("cancelled by queue shutdown".to_string());
                        entry.events.push(
                            JsonObject::new()
                                .field_str("event", "job_done")
                                .field_str("status", JobState::Cancelled.label())
                                .finish(),
                        );
                        entry.events.close();
                    }
                    _ => {}
                }
            }
        }
        self.shared.cv.notify_all();
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().unwrap();
            guard.drain(..).collect()
        };
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Scan a run-log directory for interrupted jobs: every readable
/// `job-{id}.runlog` whose log is *not* completed, with its problem
/// rebuilt (and hash-verified) from the manifest frame.  Unreadable
/// logs and non-single-domain modes are skipped, not errors — a torn
/// manifest means there is nothing to resume.
fn scan_resumable(dir: &Path) -> Result<Vec<(u64, Problem, PathBuf)>> {
    let entries = std::fs::read_dir(dir).map_err(|e| Error::Execution {
        reason: format!("cannot scan run-log directory {}: {e}", dir.display()),
    })?;
    let mut found = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(id) = name
            .to_str()
            .and_then(|n| n.strip_prefix("job-"))
            .and_then(|n| n.strip_suffix(".runlog"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let Ok(recovered) = recover(entry.path()) else {
            continue;
        };
        if recovered.completed || recovered.manifest.mode != RunMode::Single {
            continue;
        }
        found.push((id, recovered.manifest.problem, entry.path()));
    }
    found.sort_unstable_by_key(|(id, ..)| *id);
    Ok(found)
}

/// Wraps the job's event writer and records the submit → first-byte
/// latency into the `serve_time_to_first_event_seconds` histogram on
/// the first successful write.  Cached jobs never run through a worker
/// and so never touch the histogram.
struct FirstEventProbe<'a, W: Write> {
    inner: W,
    shared: &'a QueueShared,
    submitted_at: Instant,
    fired: bool,
}

impl<W: Write> Write for FirstEventProbe<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.inner.write(buf)?;
        if !self.fired && written > 0 {
            self.fired = true;
            self.shared.observe_seconds(
                "serve_time_to_first_event_seconds",
                self.submitted_at.elapsed().as_secs_f64(),
            );
        }
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Run one job to completion: session construction (fresh, or restored
/// from an interrupted run log), the observed solve streaming JSONL
/// into the job's channel, and the error path.  With a run-log
/// directory configured the solve checkpoints as it goes; a successful
/// run deletes its log (nothing left to resume), any other exit keeps
/// it for the next restart.
///
/// Returns the outcome JSON alongside the solve's span tree rendered
/// as Chrome `trace_event` JSON (`GET /v1/jobs/{id}/trace`).
fn run_job(
    shared: &QueueShared,
    problem: &Problem,
    cancel: CancelToken,
    events: &LineChannel,
    id: u64,
    resume_log: Option<&Path>,
    submitted_at: Instant,
) -> Result<(String, String)> {
    let mut jsonl = JsonlObserver::new(JsonlWriter::new(FirstEventProbe {
        inner: events.writer(),
        shared,
        submitted_at,
        fired: false,
    }));
    let Some(settings) = shared.runlog.as_ref() else {
        let mut session = Session::new(problem)?;
        session.solver_mut().set_cancel_token(cancel);
        let outcome = session.run_observed(&mut jsonl)?;
        // Dropping the observer flushes its writer into the channel.
        drop(jsonl);
        return Ok((outcome.to_json(), outcome.trace.to_chrome_json()));
    };

    let path = settings.job_path(id);
    let (mut session, ckpt) = match resume_log {
        // On resume the solver replays the recovered event prefix into
        // the observer tee, so the JSONL stream a client tails is the
        // complete history, not just the tail after the crash.
        Some(log) => (
            Session::resume(log)?,
            CheckpointObserver::resume(log, settings.every)?,
        ),
        None => (
            Session::new(problem)?,
            CheckpointObserver::create(&path, problem, RunMode::Single, settings.every)?,
        ),
    };
    session.solver_mut().set_cancel_token(cancel);
    let mut sink = ckpt.sink();
    let mut ckpt = ckpt;
    let outcome = {
        let mut tee = TeeObserver::new(&mut jsonl, &mut ckpt);
        session.run_checkpointed(&mut tee, &mut sink)?
    };
    drop(jsonl);
    drop(ckpt);
    // The run finished: its log records a completed run and can never
    // be resumed, so reclaim the disk space.
    let _ = std::fs::remove_file(resume_log.unwrap_or(&path));
    Ok((outcome.to_json(), outcome.trace.to_chrome_json()))
}

fn worker_loop(shared: &QueueShared) {
    loop {
        let (id, problem, cancel, events, resume_log, submitted_at) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(id) = state.pending.pop_front() {
                    let entry = state.jobs.get_mut(&id).expect("pending job exists");
                    entry.state = JobState::Running;
                    break (
                        id,
                        entry.problem.clone(),
                        entry.cancel.clone(),
                        entry.events.clone(),
                        entry.resume_log.clone(),
                        entry.submitted_at,
                    );
                }
                state = shared.cv.wait(state).unwrap();
            }
        };
        shared.observe_seconds(
            "serve_queue_wait_seconds",
            submitted_at.elapsed().as_secs_f64(),
        );

        let result = run_job(
            shared,
            &problem,
            cancel,
            &events,
            id,
            resume_log.as_deref(),
            submitted_at,
        );

        let mut state = shared.state.lock().unwrap();
        let entry = state.jobs.get_mut(&id).expect("running job exists");
        let (final_state, counter) = match &result {
            Ok(_) => (JobState::Done, "serve_jobs_completed"),
            Err(Error::Cancelled { .. }) => (JobState::Cancelled, "serve_jobs_cancelled"),
            Err(_) => (JobState::Failed, "serve_jobs_failed"),
        };
        entry.state = final_state;
        let mut done_line = JsonObject::new()
            .field_str("event", "job_done")
            .field_str("status", final_state.label());
        match result {
            Ok((outcome_json, trace_json)) => {
                entry.outcome_json = Some(outcome_json.clone());
                entry.trace_json = Some(trace_json);
                shared
                    .store
                    .lock()
                    .unwrap()
                    .insert(entry.hash, outcome_json);
            }
            Err(error) => {
                let message = error.to_string();
                done_line = done_line.field_str("error", &message);
                entry.error = Some(message);
            }
        }
        events.push(done_line.finish());
        events.close();
        drop(state);
        shared.count(counter);
        if final_state == JobState::Done {
            // Deterministic work volume: lets a caller assert a cached
            // replay did *no* additional transport work.
            let sweeps = sweeps_of(shared, id);
            shared.metrics.lock().unwrap().counter_add(
                "serve_sweeps_total",
                Determinism::Deterministic,
                sweeps,
            );
        }
    }
}

/// The sweep count recorded in a finished job's outcome JSON.
fn sweeps_of(shared: &QueueShared, id: u64) -> u64 {
    let state = shared.state.lock().unwrap();
    let Some(entry) = state.jobs.get(&id) else {
        return 0;
    };
    let Some(json) = &entry.outcome_json else {
        return 0;
    };
    unsnap_obs::reader::parse(json)
        .ok()
        .and_then(|value| value.get("sweep_count")?.as_u64())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use unsnap_core::builder::ProblemBuilder;

    fn tiny() -> Problem {
        Problem::tiny()
    }

    /// A problem whose solve takes long enough to cancel mid-run but
    /// finishes promptly once the token is observed (many outers of one
    /// cheap inner; tolerance 0 forces every iteration).
    fn slow() -> Problem {
        ProblemBuilder::tiny()
            .iterations(2, 50_000)
            .tolerance(0.0)
            .build()
            .unwrap()
    }

    fn wait_terminal(queue: &JobQueue, id: u64) -> JobStatus {
        for _ in 0..600 {
            let status = queue.status(id).expect("job exists");
            if status.state.is_terminal() {
                return status;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("job {id} never reached a terminal state");
    }

    #[test]
    fn submit_solves_and_caches() {
        let queue = JobQueue::start(1, 8, 8);
        let first = queue.submit(tiny()).unwrap();
        assert!(!first.cached);
        let status = wait_terminal(&queue, first.id);
        assert_eq!(status.state, JobState::Done);
        let outcome = status.outcome_json.expect("outcome rendered");
        assert!(outcome.contains("\"sweep_count\""));
        let sweeps_after_first = queue.counter("serve_sweeps_total").unwrap();
        assert!(sweeps_after_first > 0);

        // The identical problem replays from the cache: born Done, the
        // exact same bytes, and no additional transport work.
        let second = queue.submit(tiny()).unwrap();
        assert!(second.cached);
        assert_eq!(second.state, JobState::Done);
        assert_eq!(second.hash, first.hash);
        let replay = queue.status(second.id).unwrap();
        assert_eq!(replay.outcome_json.as_deref(), Some(outcome.as_str()));
        assert_eq!(queue.counter("serve_cache_hits"), Some(1));
        assert_eq!(
            queue.counter("serve_sweeps_total").unwrap(),
            sweeps_after_first
        );
    }

    #[test]
    fn solved_jobs_expose_traces_and_latency_histograms() {
        let queue = JobQueue::start(1, 8, 8);
        let receipt = queue.submit(tiny()).unwrap();
        wait_terminal(&queue, receipt.id);

        // The finished job carries a Chrome trace_event profile rooted
        // at the driver-lane `solve` span.
        let trace = queue
            .trace_json(receipt.id)
            .unwrap()
            .expect("trace rendered");
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("solve"));

        // A cache hit replays no work, so it has no trace; an unknown
        // ID is distinguishable from that.
        let cached = queue.submit(tiny()).unwrap();
        assert!(cached.cached);
        assert_eq!(queue.trace_json(cached.id), Some(None));
        assert_eq!(queue.trace_json(9_999), None);

        // Both wall-clock latency histograms saw exactly the solved
        // job — the cache hit never entered the FIFO.
        let text = queue.metrics_prometheus();
        assert!(text.contains("serve_queue_wait_seconds_count{class=\"wallclock\"} 1\n"));
        assert!(text.contains("serve_time_to_first_event_seconds_count{class=\"wallclock\"} 1\n"));
    }

    #[test]
    fn events_stream_and_close() {
        let queue = JobQueue::start(1, 8, 8);
        let receipt = queue.submit(tiny()).unwrap();
        let events = queue.events(receipt.id).expect("stream exists");
        let mut seen = Vec::new();
        loop {
            let (lines, closed) = events.wait_at(seen.len(), Duration::from_secs(30));
            seen.extend(lines);
            if closed && seen.len() == events.len() {
                break;
            }
        }
        assert!(seen.iter().any(|l| l.contains("outer_start")));
        assert!(seen.last().unwrap().contains("job_done"));
    }

    #[test]
    fn cancel_running_job_and_stay_serviceable() {
        let queue = JobQueue::start(1, 8, 8);
        let receipt = queue.submit(slow()).unwrap();
        // Wait until the worker picks it up.
        for _ in 0..600 {
            if queue.status(receipt.id).unwrap().state == JobState::Running {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        queue.cancel(receipt.id).unwrap();
        let status = wait_terminal(&queue, receipt.id);
        assert_eq!(status.state, JobState::Cancelled);
        assert!(status.error.unwrap().contains("cancelled"));

        // The same worker must pick up and finish the next job.
        let next = queue.submit(tiny()).unwrap();
        let status = wait_terminal(&queue, next.id);
        assert_eq!(status.state, JobState::Done);
        assert_eq!(queue.counter("serve_jobs_cancelled"), Some(1));
    }

    #[test]
    fn cancel_queued_job_skips_the_solver() {
        // One worker pinned on a slow job; a queued job behind it
        // cancels immediately without ever running.
        let queue = JobQueue::start(1, 8, 8);
        let blocker = queue.submit(slow()).unwrap();
        let queued = queue.submit(tiny()).unwrap();
        assert_eq!(
            queue.cancel(queued.id),
            Some((JobState::Queued, JobState::Cancelled))
        );
        // A second cancel reports the job was already terminal.
        assert_eq!(
            queue.cancel(queued.id),
            Some((JobState::Cancelled, JobState::Cancelled))
        );
        let status = queue.status(queued.id).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        assert!(queue.events(queued.id).unwrap().is_closed());
        queue.cancel(blocker.id);
        wait_terminal(&queue, blocker.id);
    }

    #[test]
    fn full_queue_rejects_with_execution_error() {
        let queue = JobQueue::start(1, 1, 8);
        let blocker = queue.submit(slow()).unwrap();
        // Give the single worker time to take the blocker off the FIFO,
        // then fill the FIFO's single slot.
        for _ in 0..600 {
            if queue.status(blocker.id).unwrap().state == JobState::Running {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let queued = queue.submit(slow()).unwrap();
        let err = queue.submit(slow()).unwrap_err();
        assert!(matches!(err, Error::Execution { .. }));
        assert_eq!(queue.counter("serve_queue_rejections"), Some(1));
        queue.cancel(queued.id);
        queue.cancel(blocker.id);
        wait_terminal(&queue, blocker.id);
    }

    #[test]
    fn unknown_ids_are_none() {
        let queue = JobQueue::start(1, 8, 8);
        assert!(queue.status(99).is_none());
        assert!(queue.events(99).is_none());
        assert!(queue.cancel(99).is_none());
        assert!(queue.resume(99).is_none());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("unsnap-serve-runlog-{}-{tag}", std::process::id()))
    }

    /// Write a killed-mid-run single-domain log for `problem` as
    /// `job-{id}.runlog` under `dir`: run it to completion against an
    /// in-memory buffer, then keep only the first `keep_checkpoints`
    /// whole checkpoint frames (a deterministic stand-in for a SIGKILL).
    fn seed_interrupted_log(
        dir: &std::path::Path,
        id: u64,
        problem: &Problem,
        keep_checkpoints: usize,
    ) {
        use unsnap_runlog::{frame, SharedBuffer};
        let buffer = SharedBuffer::new();
        let observer =
            CheckpointObserver::with_writer(Box::new(buffer.clone()), problem, RunMode::Single, 1)
                .unwrap();
        let mut sink = observer.sink();
        let mut observer = observer;
        let mut session = Session::new(problem).unwrap();
        session.run_checkpointed(&mut observer, &mut sink).unwrap();
        let log = buffer.bytes();
        let cut = frame::scan(&log)
            .frames
            .iter()
            .filter(|f| f.tag == frame::TAG_CHECKPOINT)
            .nth(keep_checkpoints - 1)
            .expect("enough checkpoints to truncate at")
            .end_offset;
        std::fs::write(dir.join(format!("job-{id}.runlog")), &log[..cut]).unwrap();
    }

    #[test]
    fn interrupted_logs_are_listed_resumable_and_resume_to_done() {
        let dir = temp_dir("resume");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let problem = ProblemBuilder::tiny()
            .iterations(2, 4)
            .tolerance(0.0)
            .build()
            .unwrap();
        seed_interrupted_log(&dir, 7, &problem, 2);

        // The uninterrupted run, for the determinism cross-check below.
        let reference = Session::new(&problem).unwrap().run().unwrap();

        let queue = JobQueue::start_with_runlog(1, 8, 8, Some(dir.clone()), 1).unwrap();
        let listed = queue.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].id, 7);
        assert_eq!(listed[0].state, JobState::Resumable);
        assert_eq!(listed[0].hash, problem.canonical_hash());

        // Fresh IDs continue past the recovered one.
        let fresh = queue.submit(tiny()).unwrap();
        assert_eq!(fresh.id, 8);
        wait_terminal(&queue, fresh.id);
        assert!(!dir.join("job-8.runlog").exists(), "done jobs delete logs");

        assert_eq!(
            queue.resume(7),
            Some((JobState::Resumable, JobState::Queued))
        );
        let status = wait_terminal(&queue, 7);
        assert_eq!(status.state, JobState::Done);
        assert!(!dir.join("job-7.runlog").exists());
        // Resuming a finished job reports its state unchanged.
        assert_eq!(queue.resume(7), Some((JobState::Done, JobState::Done)));

        // The resumed outcome carries the uninterrupted run's
        // deterministic fields (the bit-for-bit contract is pinned
        // exhaustively in tests/durability.rs; here we check the
        // service-level surface).
        let outcome = unsnap_obs::reader::parse(&status.outcome_json.unwrap()).unwrap();
        assert_eq!(
            outcome.get("sweep_count").and_then(|v| v.as_u64()),
            Some(reference.sweep_count as u64)
        );

        // The event stream replayed the pre-crash prefix: a client
        // tailing the resumed job still sees outer 0.
        let events = queue.events(7).unwrap();
        assert!(events.is_closed());
        let (lines, _) = events.wait_at(0, Duration::from_secs(1));
        assert!(lines.iter().any(|l| l.contains("\"outer\":0")));
        assert!(lines.last().unwrap().contains("job_done"));

        queue.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_durable_jobs_keep_their_log_for_the_next_restart() {
        let dir = temp_dir("cancel");
        let _ = std::fs::remove_dir_all(&dir);
        // A sparse cadence: `slow()` runs tens of thousands of cheap
        // outers, and a frame per outer would be all I/O.
        let queue = JobQueue::start_with_runlog(1, 8, 8, Some(dir.clone()), 25).unwrap();
        let receipt = queue.submit(slow()).unwrap();
        for _ in 0..600 {
            if queue.status(receipt.id).unwrap().state == JobState::Running {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Let a few outers (and so at least one checkpoint) land.
        std::thread::sleep(Duration::from_millis(200));
        queue.cancel(receipt.id).unwrap();
        let status = wait_terminal(&queue, receipt.id);
        assert_eq!(status.state, JobState::Cancelled);
        queue.shutdown();
        let log = dir.join(format!("job-{}.runlog", receipt.id));
        assert!(log.exists(), "cancelled durable jobs keep their log");

        // The restarted queue re-lists it, ready to resume.
        let restarted = JobQueue::start_with_runlog(1, 8, 8, Some(dir.clone()), 25).unwrap();
        let listed = restarted.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].id, receipt.id);
        assert_eq!(listed[0].state, JobState::Resumable);
        restarted.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_checkpoint_cadence_is_rejected() {
        let err = JobQueue::start_with_runlog(1, 8, 8, Some(temp_dir("zero")), 0).unwrap_err();
        assert_eq!(err.invalid_field(), Some("checkpoint_iters"));
    }

    #[test]
    fn job_state_labels_and_terminality() {
        assert_eq!(JobState::Queued.label(), "queued");
        assert!(!JobState::Running.is_terminal());
        for state in [JobState::Done, JobState::Failed, JobState::Cancelled] {
            assert!(state.is_terminal());
        }
    }
}
