//! The bounded job queue and its worker pool.
//!
//! Solve requests do not run on the connection thread: they enter a
//! bounded FIFO and a fixed pool of worker threads drains it, so a burst
//! of requests degrades into queueing latency instead of unbounded
//! concurrency.  Each worker runs one solve at a time through the
//! ordinary [`Session`] API; the solve itself parallelises internally
//! through the problem's own rayon pool exactly as a CLI run would
//! (`RAYON_NUM_THREADS` force-overrides every pool, as in the CI
//! determinism matrix), so the worker count bounds *how many solves* run
//! concurrently, not how many threads a solve uses.
//!
//! A job moves through the state machine
//!
//! ```text
//! Queued ──▶ Running ──▶ Done
//!   │           │  └───▶ Failed
//!   └───────────┴──────▶ Cancelled
//! ```
//!
//! * `Queued → Cancelled` is immediate (the entry leaves the FIFO);
//! * `Running → Cancelled` is cooperative: the job's
//!   [`CancelToken`] is raised and the solver observes it at its next
//!   outer-iteration boundary, surfacing
//!   [`Error::Cancelled`] — the worker then records the state and moves
//!   on to the next job, fully serviceable;
//! * `Done`, `Failed` and `Cancelled` are terminal.
//!
//! Every job owns a [`LineChannel`] of its JSONL solve events (fed by a
//! [`JsonlObserver`] during the run, closed with a final `job_done`
//! line), which is what `GET /v1/jobs/{id}/events` tails.  Submission
//! consults the [`ResultStore`] first: a hit births the job directly in
//! `Done` with the cached outcome bytes and no solver work at all.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use unsnap_core::cancel::CancelToken;
use unsnap_core::error::{Error, Result};
use unsnap_core::metrics::JsonlObserver;
use unsnap_core::problem::Problem;
use unsnap_core::session::Session;
use unsnap_obs::json::JsonObject;
use unsnap_obs::jsonl::JsonlWriter;
use unsnap_obs::metrics::{Determinism, MetricsRegistry};
use unsnap_obs::stream::LineChannel;

use crate::store::ResultStore;

/// The lifecycle state of a job (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the FIFO.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished successfully; the outcome JSON is available.
    Done,
    /// The solve returned an error other than cancellation.
    Failed,
    /// Cancelled before or during the solve.
    Cancelled,
}

impl JobState {
    /// The wire label (`"queued"`, `"running"`, …).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// `true` once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A point-in-time snapshot of one job, as the status endpoint reports
/// it.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job ID.
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Whether the outcome was served from the result cache.
    pub cached: bool,
    /// The canonical hash of the job's problem (the cache key).
    pub hash: u64,
    /// The rendered outcome JSON (`Done` jobs only).
    pub outcome_json: Option<String>,
    /// The error display string (`Failed`/`Cancelled` jobs).
    pub error: Option<String>,
}

/// The receipt returned by [`JobQueue::submit`].
#[derive(Debug, Clone)]
pub struct SubmitReceipt {
    /// The new job's ID.
    pub id: u64,
    /// The canonical hash of the submitted problem.
    pub hash: u64,
    /// `true` when the result cache satisfied the request (the job is
    /// already `Done`).
    pub cached: bool,
    /// The job's state at submission (`Queued`, or `Done` on a hit).
    pub state: JobState,
}

#[derive(Debug)]
struct JobEntry {
    problem: Problem,
    state: JobState,
    cached: bool,
    hash: u64,
    outcome_json: Option<String>,
    error: Option<String>,
    cancel: CancelToken,
    events: LineChannel,
}

#[derive(Debug, Default)]
struct QueueState {
    next_id: u64,
    pending: VecDeque<u64>,
    jobs: HashMap<u64, JobEntry>,
    shutdown: bool,
}

#[derive(Debug)]
struct QueueShared {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
    metrics: Mutex<MetricsRegistry>,
    store: Mutex<ResultStore>,
}

impl QueueShared {
    fn count(&self, name: &str) {
        self.metrics
            .lock()
            .unwrap()
            .counter_add(name, Determinism::Deterministic, 1);
    }
}

/// The bounded FIFO + worker pool behind `POST /v1/solve` (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct JobQueue {
    shared: Arc<QueueShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobQueue {
    /// Start `workers` worker threads over a FIFO holding at most
    /// `capacity` queued jobs, with a result cache of `cache_capacity`
    /// outcomes.
    pub fn start(workers: usize, capacity: usize, cache_capacity: usize) -> Self {
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState {
                // Job IDs are client-facing (`/v1/jobs/{id}`); start at
                // 1 so the first submission matches the documented curl
                // flow.
                next_id: 1,
                ..QueueState::default()
            }),
            cv: Condvar::new(),
            capacity,
            metrics: Mutex::new(MetricsRegistry::new()),
            store: Mutex::new(ResultStore::new(cache_capacity)),
        });
        let workers = (0..workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("unsnap-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a problem: cache hit → a job born `Done`; otherwise the
    /// job enters the FIFO, or the call fails with
    /// [`Error::Execution`] (HTTP 503) when the queue is full.
    pub fn submit(&self, problem: Problem) -> Result<SubmitReceipt> {
        let hash = problem.canonical_hash();
        let cached_json = self.shared.store.lock().unwrap().get(hash);
        let mut state = self.shared.state.lock().unwrap();
        if state.shutdown {
            return Err(Error::Execution {
                reason: "the job queue is shutting down".to_string(),
            });
        }

        if let Some(outcome_json) = cached_json {
            let id = state.next_id;
            state.next_id += 1;
            let events = LineChannel::new();
            events.push(
                JsonObject::new()
                    .field_str("event", "job_done")
                    .field_str("status", JobState::Done.label())
                    .field_bool("cached", true)
                    .finish(),
            );
            events.close();
            state.jobs.insert(
                id,
                JobEntry {
                    problem,
                    state: JobState::Done,
                    cached: true,
                    hash,
                    outcome_json: Some(outcome_json),
                    error: None,
                    cancel: CancelToken::new(),
                    events,
                },
            );
            drop(state);
            self.shared.count("serve_cache_hits");
            self.shared.count("serve_jobs_submitted");
            return Ok(SubmitReceipt {
                id,
                hash,
                cached: true,
                state: JobState::Done,
            });
        }

        if state.pending.len() >= self.shared.capacity {
            drop(state);
            self.shared.count("serve_queue_rejections");
            return Err(Error::Execution {
                reason: format!(
                    "job queue is full ({} queued, capacity {})",
                    self.shared.capacity, self.shared.capacity
                ),
            });
        }

        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobEntry {
                problem,
                state: JobState::Queued,
                cached: false,
                hash,
                outcome_json: None,
                error: None,
                cancel: CancelToken::new(),
                events: LineChannel::new(),
            },
        );
        state.pending.push_back(id);
        drop(state);
        self.shared.count("serve_cache_misses");
        self.shared.count("serve_jobs_submitted");
        self.shared.cv.notify_one();
        Ok(SubmitReceipt {
            id,
            hash,
            cached: false,
            state: JobState::Queued,
        })
    }

    /// A snapshot of one job, or `None` for an unknown ID.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let state = self.shared.state.lock().unwrap();
        state.jobs.get(&id).map(|entry| JobStatus {
            id,
            state: entry.state,
            cached: entry.cached,
            hash: entry.hash,
            outcome_json: entry.outcome_json.clone(),
            error: entry.error.clone(),
        })
    }

    /// The live event stream of one job (a clone sharing the buffer), or
    /// `None` for an unknown ID.
    pub fn events(&self, id: u64) -> Option<LineChannel> {
        let state = self.shared.state.lock().unwrap();
        state.jobs.get(&id).map(|entry| entry.events.clone())
    }

    /// Request cancellation of a job.  Queued jobs cancel immediately;
    /// running jobs get their token raised and transition at the
    /// solver's next outer-iteration boundary; terminal jobs are left
    /// untouched.  Returns the `(before, after)` state pair of the
    /// request, or `None` for an unknown ID — the *before* state is what
    /// distinguishes "cancelled by this request" from "was already
    /// cancelled".
    pub fn cancel(&self, id: u64) -> Option<(JobState, JobState)> {
        let mut state = self.shared.state.lock().unwrap();
        let entry = state.jobs.get_mut(&id)?;
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                entry.error = Some("cancelled while queued".to_string());
                entry.events.push(
                    JsonObject::new()
                        .field_str("event", "job_done")
                        .field_str("status", JobState::Cancelled.label())
                        .finish(),
                );
                entry.events.close();
                state.pending.retain(|queued| *queued != id);
                drop(state);
                self.shared.count("serve_jobs_cancelled");
                Some((JobState::Queued, JobState::Cancelled))
            }
            JobState::Running => {
                entry.cancel.cancel();
                Some((JobState::Running, JobState::Running))
            }
            terminal => Some((terminal, terminal)),
        }
    }

    /// Count one handled HTTP request (called by the router for every
    /// request, whatever its outcome).
    pub fn record_request(&self) {
        self.shared.count("serve_requests_total");
    }

    /// The metrics registry snapshot as JSON (`/v1/metrics`).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.lock().unwrap().to_json()
    }

    /// One counter's current value (test and loadgen convenience).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.shared.metrics.lock().unwrap().counter(name)
    }

    /// Stop accepting work, raise every running job's cancel token,
    /// cancel (and close the streams of) still-queued jobs, and join
    /// the workers.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            if state.shutdown {
                return;
            }
            state.shutdown = true;
            state.pending.clear();
            for entry in state.jobs.values_mut() {
                match entry.state {
                    JobState::Running => entry.cancel.cancel(),
                    JobState::Queued => {
                        entry.state = JobState::Cancelled;
                        entry.error = Some("cancelled by queue shutdown".to_string());
                        entry.events.push(
                            JsonObject::new()
                                .field_str("event", "job_done")
                                .field_str("status", JobState::Cancelled.label())
                                .finish(),
                        );
                        entry.events.close();
                    }
                    _ => {}
                }
            }
        }
        self.shared.cv.notify_all();
        let workers: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().unwrap();
            guard.drain(..).collect()
        };
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Run one job to completion: session construction, the observed solve
/// streaming JSONL into the job's channel, and the error path.
fn run_job(problem: &Problem, cancel: CancelToken, events: &LineChannel) -> Result<String> {
    let mut session = Session::new(problem)?;
    session.solver_mut().set_cancel_token(cancel);
    let mut observer = JsonlObserver::new(JsonlWriter::new(events.writer()));
    let outcome = session.run_observed(&mut observer)?;
    // Dropping the observer flushes its writer into the channel.
    drop(observer);
    Ok(outcome.to_json())
}

fn worker_loop(shared: &QueueShared) {
    loop {
        let (id, problem, cancel, events) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(id) = state.pending.pop_front() {
                    let entry = state.jobs.get_mut(&id).expect("pending job exists");
                    entry.state = JobState::Running;
                    break (
                        id,
                        entry.problem.clone(),
                        entry.cancel.clone(),
                        entry.events.clone(),
                    );
                }
                state = shared.cv.wait(state).unwrap();
            }
        };

        let result = run_job(&problem, cancel, &events);

        let mut state = shared.state.lock().unwrap();
        let entry = state.jobs.get_mut(&id).expect("running job exists");
        let (final_state, counter) = match &result {
            Ok(_) => (JobState::Done, "serve_jobs_completed"),
            Err(Error::Cancelled { .. }) => (JobState::Cancelled, "serve_jobs_cancelled"),
            Err(_) => (JobState::Failed, "serve_jobs_failed"),
        };
        entry.state = final_state;
        let mut done_line = JsonObject::new()
            .field_str("event", "job_done")
            .field_str("status", final_state.label());
        match result {
            Ok(outcome_json) => {
                entry.outcome_json = Some(outcome_json.clone());
                shared
                    .store
                    .lock()
                    .unwrap()
                    .insert(entry.hash, outcome_json);
            }
            Err(error) => {
                let message = error.to_string();
                done_line = done_line.field_str("error", &message);
                entry.error = Some(message);
            }
        }
        events.push(done_line.finish());
        events.close();
        drop(state);
        shared.count(counter);
        if final_state == JobState::Done {
            // Deterministic work volume: lets a caller assert a cached
            // replay did *no* additional transport work.
            let sweeps = sweeps_of(shared, id);
            shared.metrics.lock().unwrap().counter_add(
                "serve_sweeps_total",
                Determinism::Deterministic,
                sweeps,
            );
        }
    }
}

/// The sweep count recorded in a finished job's outcome JSON.
fn sweeps_of(shared: &QueueShared, id: u64) -> u64 {
    let state = shared.state.lock().unwrap();
    let Some(entry) = state.jobs.get(&id) else {
        return 0;
    };
    let Some(json) = &entry.outcome_json else {
        return 0;
    };
    unsnap_obs::reader::parse(json)
        .ok()
        .and_then(|value| value.get("sweep_count")?.as_u64())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use unsnap_core::builder::ProblemBuilder;

    fn tiny() -> Problem {
        Problem::tiny()
    }

    /// A problem whose solve takes long enough to cancel mid-run but
    /// finishes promptly once the token is observed (many outers of one
    /// cheap inner; tolerance 0 forces every iteration).
    fn slow() -> Problem {
        ProblemBuilder::tiny()
            .iterations(2, 50_000)
            .tolerance(0.0)
            .build()
            .unwrap()
    }

    fn wait_terminal(queue: &JobQueue, id: u64) -> JobStatus {
        for _ in 0..600 {
            let status = queue.status(id).expect("job exists");
            if status.state.is_terminal() {
                return status;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("job {id} never reached a terminal state");
    }

    #[test]
    fn submit_solves_and_caches() {
        let queue = JobQueue::start(1, 8, 8);
        let first = queue.submit(tiny()).unwrap();
        assert!(!first.cached);
        let status = wait_terminal(&queue, first.id);
        assert_eq!(status.state, JobState::Done);
        let outcome = status.outcome_json.expect("outcome rendered");
        assert!(outcome.contains("\"sweep_count\""));
        let sweeps_after_first = queue.counter("serve_sweeps_total").unwrap();
        assert!(sweeps_after_first > 0);

        // The identical problem replays from the cache: born Done, the
        // exact same bytes, and no additional transport work.
        let second = queue.submit(tiny()).unwrap();
        assert!(second.cached);
        assert_eq!(second.state, JobState::Done);
        assert_eq!(second.hash, first.hash);
        let replay = queue.status(second.id).unwrap();
        assert_eq!(replay.outcome_json.as_deref(), Some(outcome.as_str()));
        assert_eq!(queue.counter("serve_cache_hits"), Some(1));
        assert_eq!(
            queue.counter("serve_sweeps_total").unwrap(),
            sweeps_after_first
        );
    }

    #[test]
    fn events_stream_and_close() {
        let queue = JobQueue::start(1, 8, 8);
        let receipt = queue.submit(tiny()).unwrap();
        let events = queue.events(receipt.id).expect("stream exists");
        let mut seen = Vec::new();
        loop {
            let (lines, closed) = events.wait_at(seen.len(), Duration::from_secs(30));
            seen.extend(lines);
            if closed && seen.len() == events.len() {
                break;
            }
        }
        assert!(seen.iter().any(|l| l.contains("outer_start")));
        assert!(seen.last().unwrap().contains("job_done"));
    }

    #[test]
    fn cancel_running_job_and_stay_serviceable() {
        let queue = JobQueue::start(1, 8, 8);
        let receipt = queue.submit(slow()).unwrap();
        // Wait until the worker picks it up.
        for _ in 0..600 {
            if queue.status(receipt.id).unwrap().state == JobState::Running {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        queue.cancel(receipt.id).unwrap();
        let status = wait_terminal(&queue, receipt.id);
        assert_eq!(status.state, JobState::Cancelled);
        assert!(status.error.unwrap().contains("cancelled"));

        // The same worker must pick up and finish the next job.
        let next = queue.submit(tiny()).unwrap();
        let status = wait_terminal(&queue, next.id);
        assert_eq!(status.state, JobState::Done);
        assert_eq!(queue.counter("serve_jobs_cancelled"), Some(1));
    }

    #[test]
    fn cancel_queued_job_skips_the_solver() {
        // One worker pinned on a slow job; a queued job behind it
        // cancels immediately without ever running.
        let queue = JobQueue::start(1, 8, 8);
        let blocker = queue.submit(slow()).unwrap();
        let queued = queue.submit(tiny()).unwrap();
        assert_eq!(
            queue.cancel(queued.id),
            Some((JobState::Queued, JobState::Cancelled))
        );
        // A second cancel reports the job was already terminal.
        assert_eq!(
            queue.cancel(queued.id),
            Some((JobState::Cancelled, JobState::Cancelled))
        );
        let status = queue.status(queued.id).unwrap();
        assert_eq!(status.state, JobState::Cancelled);
        assert!(queue.events(queued.id).unwrap().is_closed());
        queue.cancel(blocker.id);
        wait_terminal(&queue, blocker.id);
    }

    #[test]
    fn full_queue_rejects_with_execution_error() {
        let queue = JobQueue::start(1, 1, 8);
        let blocker = queue.submit(slow()).unwrap();
        // Give the single worker time to take the blocker off the FIFO,
        // then fill the FIFO's single slot.
        for _ in 0..600 {
            if queue.status(blocker.id).unwrap().state == JobState::Running {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let queued = queue.submit(slow()).unwrap();
        let err = queue.submit(slow()).unwrap_err();
        assert!(matches!(err, Error::Execution { .. }));
        assert_eq!(queue.counter("serve_queue_rejections"), Some(1));
        queue.cancel(queued.id);
        queue.cancel(blocker.id);
        wait_terminal(&queue, blocker.id);
    }

    #[test]
    fn unknown_ids_are_none() {
        let queue = JobQueue::start(1, 8, 8);
        assert!(queue.status(99).is_none());
        assert!(queue.events(99).is_none());
        assert!(queue.cancel(99).is_none());
    }

    #[test]
    fn job_state_labels_and_terminality() {
        assert_eq!(JobState::Queued.label(), "queued");
        assert!(!JobState::Running.is_terminal());
        for state in [JobState::Done, JobState::Failed, JobState::Cancelled] {
            assert!(state.is_terminal());
        }
    }
}
