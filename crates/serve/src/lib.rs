//! # unsnap-serve
//!
//! Solver-as-a-service: a job-queued HTTP front-end for the UnSNAP
//! transport solver, with live residual streaming and a
//! content-addressed result cache.  Everything is hand-rolled over
//! `std::net` — the workspace vendors its dependencies, so there is no
//! async runtime; concurrency is a bounded worker pool plus a thread
//! per connection, which is exactly the right shape for a compute
//! service whose unit of work is a multi-second solve.
//!
//! ## Module map
//!
//! * [`http`] — minimal HTTP/1.1: request parsing, fixed and chunked
//!   responses, a tiny blocking client for tests and `loadgen`.
//! * [`wire`] — request-body parsing (named or inline problems, via
//!   [`unsnap_core::wire`]) and the typed-error → status mapping.
//! * [`queue`] — the bounded FIFO, the worker pool, and the job state
//!   machine (`Queued → Running → Done/Failed/Cancelled`, plus
//!   `Resumable` for jobs recovered from the run logs of a previous
//!   process when a `runlog_dir` is configured).
//! * [`store`] — the LRU result cache keyed by
//!   [`Problem::canonical_hash`](unsnap_core::problem::Problem::canonical_hash).
//! * [`cancel`] — the cancellation policy glue over
//!   [`unsnap_core::cancel`].
//! * [`routes`] — the route table tying the above to connections.
//!
//! ## Quickstart
//!
//! ```
//! use unsnap_serve::{ServeConfig, Server};
//!
//! // Port 0 = ephemeral (tests); the `serve` bin defaults to 8471.
//! let config = ServeConfig { port: 0, ..ServeConfig::default() };
//! let server = Server::start(&config).unwrap();
//! let response = unsnap_serve::http::request(
//!     server.addr(),
//!     "POST",
//!     "/v1/solve",
//!     Some(r#"{"problem": "tiny"}"#),
//! )
//! .unwrap();
//! assert_eq!(response.status, 202);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cancel;
pub mod http;
pub mod queue;
pub mod routes;
pub mod store;
pub mod wire;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use unsnap_core::error::{Error, Result};

pub use cancel::{CancelDisposition, CancelToken};
pub use queue::{JobQueue, JobState, JobStatus, SubmitReceipt};
pub use store::ResultStore;

/// Server configuration, overridable through the `UNSNAP_*` environment
/// family (see [`ServeConfig::from_env`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral, for tests).
    pub port: u16,
    /// Solver worker threads draining the job queue.
    pub workers: usize,
    /// Maximum number of jobs waiting in the FIFO (a full queue answers
    /// 503).
    pub queue_capacity: usize,
    /// Result-cache capacity in outcomes (0 disables caching).
    pub cache_capacity: usize,
    /// Directory for per-job run logs (`job-{id}.runlog`).  `Some`
    /// makes every job durable: solves checkpoint through
    /// `unsnap-runlog`, and a restarted server re-lists interrupted
    /// jobs as `resumable` (see [`JobState::Resumable`]).  `None`
    /// (the default) disables durability entirely.
    pub runlog_dir: Option<std::path::PathBuf>,
    /// Checkpoint cadence in outer iterations (only meaningful with
    /// `runlog_dir` set); the `UNSNAP_CHECKPOINT_ITERS` knob.
    pub checkpoint_iters: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            port: 8471,
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 64,
            runlog_dir: None,
            checkpoint_iters: 1,
        }
    }
}

impl ServeConfig {
    /// The defaults with the `UNSNAP_PORT`, `UNSNAP_SERVE_WORKERS` and
    /// `UNSNAP_CACHE_CAPACITY` environment overrides applied — the same
    /// strict validation idiom as `ProblemBuilder::env_overrides`: an
    /// unset variable keeps the default, a set but unparsable one is an
    /// [`Error::InvalidProblem`] naming the knob.  Worker counts must
    /// be at least 1; a cache capacity of 0 is legal (it disables
    /// caching).
    pub fn from_env() -> Result<Self> {
        let mut config = Self::default();
        if let Ok(raw) = std::env::var("UNSNAP_PORT") {
            config.port = raw
                .trim()
                .parse()
                .map_err(|e| Error::invalid_problem("port", format!("UNSNAP_PORT: {e}")))?;
        }
        if let Ok(raw) = std::env::var("UNSNAP_SERVE_WORKERS") {
            let workers: usize = raw.trim().parse().map_err(|e| {
                Error::invalid_problem("serve_workers", format!("UNSNAP_SERVE_WORKERS: {e}"))
            })?;
            if workers == 0 {
                return Err(Error::invalid_problem(
                    "serve_workers",
                    "UNSNAP_SERVE_WORKERS: worker count must be at least 1",
                ));
            }
            config.workers = workers;
        }
        if let Ok(raw) = std::env::var("UNSNAP_CACHE_CAPACITY") {
            config.cache_capacity = raw.trim().parse().map_err(|e| {
                Error::invalid_problem("cache_capacity", format!("UNSNAP_CACHE_CAPACITY: {e}"))
            })?;
        }
        if let Ok(raw) = std::env::var("UNSNAP_RUNLOG_DIR") {
            let trimmed = raw.trim();
            if trimmed.is_empty() {
                return Err(Error::invalid_problem(
                    "runlog_dir",
                    "UNSNAP_RUNLOG_DIR: directory path must be non-empty",
                ));
            }
            config.runlog_dir = Some(std::path::PathBuf::from(trimmed));
        }
        config.checkpoint_iters = unsnap_runlog::checkpoint_iters_from_env()?;
        Ok(config)
    }
}

/// A running `unsnap-serve` instance: an accept loop on 127.0.0.1, a
/// thread per connection, and the shared [`JobQueue`] behind them.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    queue: Arc<JobQueue>,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Bind, start the worker pool and the accept loop.  Binding
    /// failures surface as [`Error::Execution`].
    pub fn start(config: &ServeConfig) -> Result<Self> {
        let listener =
            TcpListener::bind(("127.0.0.1", config.port)).map_err(|e| Error::Execution {
                reason: format!("cannot bind 127.0.0.1:{}: {e}", config.port),
            })?;
        let addr = listener.local_addr().map_err(|e| Error::Execution {
            reason: format!("cannot read the bound address: {e}"),
        })?;
        let queue = Arc::new(JobQueue::start_with_runlog(
            config.workers,
            config.queue_capacity,
            config.cache_capacity,
            config.runlog_dir.clone(),
            config.checkpoint_iters,
        )?);
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("unsnap-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let queue = Arc::clone(&queue);
                        // One thread per connection: requests are either
                        // quick JSON exchanges or a deliberate long-lived
                        // event tail; the solver work itself is bounded
                        // by the worker pool, not by connection count.
                        let _ = std::thread::Builder::new()
                            .name("unsnap-serve-conn".to_string())
                            .spawn(move || routes::handle_connection(stream, &queue));
                    }
                })
                .map_err(|e| Error::Execution {
                    reason: format!("cannot spawn the accept thread: {e}"),
                })?
        };
        Ok(Self {
            addr,
            queue,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared job queue (tests and `loadgen` read counters through
    /// it directly).
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// Stop the accept loop, shut the queue down (cancelling running
    /// jobs) and join the server threads.  Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.lock().unwrap().take() {
            let _ = handle.join();
        }
        self.queue.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_documented_values() {
        let config = ServeConfig::default();
        assert_eq!(config.port, 8471);
        assert_eq!(config.workers, 2);
        assert_eq!(config.queue_capacity, 32);
        assert_eq!(config.cache_capacity, 64);
    }

    #[test]
    fn env_overrides_validate_like_the_unsnap_family() {
        // Process-global env: this test owns the three serve variables
        // and removes them before returning.
        std::env::set_var("UNSNAP_PORT", "0");
        std::env::set_var("UNSNAP_SERVE_WORKERS", "3");
        std::env::set_var("UNSNAP_CACHE_CAPACITY", "0");
        let config = ServeConfig::from_env().unwrap();
        assert_eq!(config.port, 0);
        assert_eq!(config.workers, 3);
        assert_eq!(config.cache_capacity, 0);

        std::env::set_var("UNSNAP_PORT", "notaport");
        let err = ServeConfig::from_env().unwrap_err();
        assert_eq!(err.invalid_field(), Some("port"));
        std::env::set_var("UNSNAP_PORT", "0");

        for bad in ["0", "-1", "many"] {
            std::env::set_var("UNSNAP_SERVE_WORKERS", bad);
            let err = ServeConfig::from_env().unwrap_err();
            assert_eq!(err.invalid_field(), Some("serve_workers"), "'{bad}'");
        }
        std::env::set_var("UNSNAP_SERVE_WORKERS", "3");

        std::env::set_var("UNSNAP_CACHE_CAPACITY", "soon");
        let err = ServeConfig::from_env().unwrap_err();
        assert_eq!(err.invalid_field(), Some("cache_capacity"));
        std::env::set_var("UNSNAP_CACHE_CAPACITY", "0");

        std::env::set_var("UNSNAP_RUNLOG_DIR", "/tmp/unsnap-logs");
        std::env::set_var("UNSNAP_CHECKPOINT_ITERS", "3");
        let config = ServeConfig::from_env().unwrap();
        assert_eq!(
            config.runlog_dir.as_deref(),
            Some(std::path::Path::new("/tmp/unsnap-logs"))
        );
        assert_eq!(config.checkpoint_iters, 3);

        std::env::set_var("UNSNAP_RUNLOG_DIR", "  ");
        let err = ServeConfig::from_env().unwrap_err();
        assert_eq!(err.invalid_field(), Some("runlog_dir"));
        std::env::remove_var("UNSNAP_RUNLOG_DIR");

        std::env::set_var("UNSNAP_CHECKPOINT_ITERS", "0");
        let err = ServeConfig::from_env().unwrap_err();
        assert_eq!(err.invalid_field(), Some("checkpoint_iters"));
        std::env::remove_var("UNSNAP_CHECKPOINT_ITERS");

        std::env::remove_var("UNSNAP_PORT");
        std::env::remove_var("UNSNAP_SERVE_WORKERS");
        std::env::remove_var("UNSNAP_CACHE_CAPACITY");
        assert_eq!(ServeConfig::from_env().unwrap(), ServeConfig::default());
    }

    #[test]
    fn server_starts_and_shuts_down_cleanly() {
        let config = ServeConfig {
            port: 0,
            workers: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(&config).unwrap();
        assert_ne!(server.addr().port(), 0);
        let response =
            http::request(server.addr(), "GET", "/v1/metrics", None).expect("metrics reachable");
        assert_eq!(response.status, 200);
        server.shutdown();
        server.shutdown(); // idempotent
    }
}
