//! The `unsnap-serve` daemon: bind, print where we are listening and
//! what the registry offers, then serve until killed.
//!
//! Configuration is environment-only (the `UNSNAP_*` family):
//! `UNSNAP_PORT` (default 8471), `UNSNAP_SERVE_WORKERS` (default 2),
//! `UNSNAP_CACHE_CAPACITY` (default 64, 0 disables the result cache),
//! `UNSNAP_RUNLOG_DIR` (unset disables durability; set, every job
//! checkpoints into `{dir}/job-{id}.runlog` and a restarted daemon
//! re-lists interrupted jobs as `resumable`) and
//! `UNSNAP_CHECKPOINT_ITERS` (checkpoint cadence in outer iterations,
//! default 1).

use std::process::ExitCode;

use unsnap_core::problem::Problem;
use unsnap_serve::{ServeConfig, Server};

fn main() -> ExitCode {
    let config = match ServeConfig::from_env() {
        Ok(config) => config,
        Err(error) => {
            eprintln!("unsnap-serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(&config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("unsnap-serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "unsnap-serve listening on http://{} ({} workers, queue {}, cache {})",
        server.addr(),
        config.workers,
        config.queue_capacity,
        config.cache_capacity
    );
    match &config.runlog_dir {
        Some(dir) => {
            let resumable = server
                .queue()
                .list()
                .iter()
                .filter(|job| job.state == unsnap_serve::JobState::Resumable)
                .count();
            println!(
                "durable runs: {} (checkpoint every {} outer(s), {} resumable job(s) recovered)",
                dir.display(),
                config.checkpoint_iters,
                resumable
            );
        }
        None => println!("durable runs: disabled (set UNSNAP_RUNLOG_DIR to enable)"),
    }
    println!(
        "registry problems: {}",
        Problem::registry_names().join(", ")
    );
    println!(
        "POST /v1/solve | GET /v1/jobs | GET /v1/jobs/{{id}}[/events|/trace] | POST /v1/jobs/{{id}}/resume | DELETE /v1/jobs/{{id}} | GET /v1/metrics[?format=prometheus]"
    );
    // Serve forever: the accept loop owns the work; unparks are spurious
    // by contract, so loop.
    loop {
        std::thread::park();
    }
}
