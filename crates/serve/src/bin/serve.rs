//! The `unsnap-serve` daemon: bind, print where we are listening and
//! what the registry offers, then serve until killed.
//!
//! Configuration is environment-only (the `UNSNAP_*` family):
//! `UNSNAP_PORT` (default 8471), `UNSNAP_SERVE_WORKERS` (default 2) and
//! `UNSNAP_CACHE_CAPACITY` (default 64, 0 disables the result cache).

use std::process::ExitCode;

use unsnap_core::problem::Problem;
use unsnap_serve::{ServeConfig, Server};

fn main() -> ExitCode {
    let config = match ServeConfig::from_env() {
        Ok(config) => config,
        Err(error) => {
            eprintln!("unsnap-serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(&config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("unsnap-serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "unsnap-serve listening on http://{} ({} workers, queue {}, cache {})",
        server.addr(),
        config.workers,
        config.queue_capacity,
        config.cache_capacity
    );
    println!(
        "registry problems: {}",
        Problem::registry_names().join(", ")
    );
    println!(
        "POST /v1/solve | GET /v1/jobs/{{id}}[/events] | DELETE /v1/jobs/{{id}} | GET /v1/metrics"
    );
    // Serve forever: the accept loop owns the work; unparks are spurious
    // by contract, so loop.
    loop {
        std::thread::park();
    }
}
