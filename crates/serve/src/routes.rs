//! The route table: HTTP requests → queue operations.
//!
//! | method | path                  | does                                      | success |
//! |--------|-----------------------|-------------------------------------------|---------|
//! | POST   | `/v1/solve`           | parse + validate a problem, enqueue (or cache-hit) | 202 |
//! | GET    | `/v1/jobs`            | list every known job (incl. `resumable`)  | 200 |
//! | GET    | `/v1/jobs/{id}`       | job status + outcome JSON when done       | 200 |
//! | GET    | `/v1/jobs/{id}/events`| chunked live JSONL solve-event stream     | 200 |
//! | GET    | `/v1/jobs/{id}/trace` | finished job's Chrome `trace_event` JSON  | 200 |
//! | POST   | `/v1/jobs/{id}/resume`| re-queue a `resumable` (interrupted) job  | 202 |
//! | DELETE | `/v1/jobs/{id}`       | cooperative cancel                        | 200 |
//! | GET    | `/v1/metrics`         | the server's metrics-registry snapshot    | 200 |
//!
//! `/v1/metrics` defaults to the JSON registry snapshot;
//! `?format=prometheus` switches to the Prometheus text exposition
//! (`text/plain`).  Any other `format` value falls back to JSON.
//!
//! Failures use the typed-error mapping of [`crate::wire::status_for`]:
//! validation problems are 400s with the offending field named in the
//! body, an over-full queue is a 503, unknown paths and job IDs are
//! 404s, and a known path with the wrong method is a 405.
//!
//! The event stream replays a job's full history before tailing, so a
//! client attaching after convergence still sees every residual; the
//! response ends (chunked terminator, connection close) when the job's
//! channel closes with its final `job_done` line.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use unsnap_core::error::Error;
use unsnap_obs::json::JsonObject;

use crate::cancel::CancelDisposition;
use crate::http::{self, ChunkedWriter, Request};
use crate::queue::{JobQueue, JobStatus};
use crate::wire;

/// How long one `wait_at` poll of a job's event channel blocks before
/// re-checking (bounds how late the chunked stream notices a close).
const EVENT_POLL: Duration = Duration::from_millis(250);

fn error_body(error: &Error) -> String {
    let obj = JsonObject::new().field_str("error", &error.to_string());
    match error.invalid_field() {
        Some(field) => obj.field_str("field", field),
        None => obj.field_raw("field", "null"),
    }
    .finish()
}

fn not_found(what: &str) -> (u16, String) {
    (
        404,
        JsonObject::new()
            .field_str("error", &format!("{what} not found"))
            .field_raw("field", "null")
            .finish(),
    )
}

fn status_body(status: &JobStatus) -> String {
    let obj = JsonObject::new()
        .field_u64("job_id", status.id)
        .field_str("status", status.state.label())
        .field_bool("cached", status.cached)
        .field_str("problem_hash", &format!("{:016x}", status.hash));
    let obj = match &status.outcome_json {
        Some(outcome) => obj.field_raw("outcome", outcome),
        None => obj.field_raw("outcome", "null"),
    };
    match &status.error {
        Some(error) => obj.field_str("error", error),
        None => obj.field_raw("error", "null"),
    }
    .finish()
}

/// What a `/v1/jobs/{id}…` path addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobRoute {
    /// `/v1/jobs/{id}` — status (GET) or cancel (DELETE).
    Status,
    /// `/v1/jobs/{id}/events` — the chunked JSONL stream.
    Events,
    /// `/v1/jobs/{id}/trace` — the Chrome `trace_event` profile.
    Trace,
    /// `/v1/jobs/{id}/resume` — re-queue an interrupted job.
    Resume,
}

/// Parse `/v1/jobs/{id}`, `/v1/jobs/{id}/events`,
/// `/v1/jobs/{id}/trace` and `/v1/jobs/{id}/resume` paths.
fn job_path(path: &str) -> Option<(u64, JobRoute)> {
    let rest = path.strip_prefix("/v1/jobs/")?;
    if let Some(id_text) = rest.strip_suffix("/events") {
        Some((id_text.parse().ok()?, JobRoute::Events))
    } else if let Some(id_text) = rest.strip_suffix("/trace") {
        Some((id_text.parse().ok()?, JobRoute::Trace))
    } else if let Some(id_text) = rest.strip_suffix("/resume") {
        Some((id_text.parse().ok()?, JobRoute::Resume))
    } else {
        Some((rest.parse().ok()?, JobRoute::Status))
    }
}

fn post_solve(queue: &JobQueue, request: &Request) -> (u16, String) {
    let body = String::from_utf8_lossy(&request.body);
    let problem = match wire::parse_solve_request(&body) {
        Ok(problem) => problem,
        Err(error) => return (wire::status_for(&error), error_body(&error)),
    };
    match queue.submit(problem) {
        Ok(receipt) => (
            202,
            JsonObject::new()
                .field_u64("job_id", receipt.id)
                .field_str("status", receipt.state.label())
                .field_str("cache", if receipt.cached { "hit" } else { "miss" })
                .field_str("problem_hash", &format!("{:016x}", receipt.hash))
                .finish(),
        ),
        Err(error) => (wire::status_for(&error), error_body(&error)),
    }
}

fn get_job(queue: &JobQueue, id: u64) -> (u16, String) {
    match queue.status(id) {
        Some(status) => (200, status_body(&status)),
        None => not_found(&format!("job {id}")),
    }
}

/// `GET /v1/jobs/{id}/trace`: the Chrome `trace_event` profile of a
/// finished solve.  404 for an unknown ID; 409 when the job exists but
/// has no trace (still queued/running, failed, or a cache hit that
/// replayed no work).
fn get_trace(queue: &JobQueue, id: u64) -> (u16, String) {
    match queue.trace_json(id) {
        Some(Some(trace)) => (200, trace),
        Some(None) => (
            409,
            JsonObject::new()
                .field_str(
                    "error",
                    &format!("job {id} has no trace (not finished, or served from cache)"),
                )
                .field_raw("field", "null")
                .finish(),
        ),
        None => not_found(&format!("job {id}")),
    }
}

fn list_jobs(queue: &JobQueue) -> (u16, String) {
    let bodies: Vec<String> = queue.list().iter().map(status_body).collect();
    (
        200,
        JsonObject::new()
            .field_raw("jobs", &unsnap_obs::json::array_raw(bodies))
            .finish(),
    )
}

fn resume_job(queue: &JobQueue, id: u64) -> (u16, String) {
    use crate::queue::JobState;
    match queue.resume(id) {
        Some((JobState::Resumable, after)) => (
            202,
            JsonObject::new()
                .field_u64("job_id", id)
                .field_str("status", after.label())
                .finish(),
        ),
        Some((before, _)) => (
            409,
            JsonObject::new()
                .field_str(
                    "error",
                    &format!("job {id} is {}, not resumable", before.label()),
                )
                .field_raw("field", "null")
                .finish(),
        ),
        None => not_found(&format!("job {id}")),
    }
}

fn delete_job(queue: &JobQueue, id: u64) -> (u16, String) {
    match queue.cancel(id) {
        Some((before, after)) => {
            let disposition = CancelDisposition::from_prior_state(before);
            (
                200,
                JsonObject::new()
                    .field_u64("job_id", id)
                    .field_bool("cancel_requested", true)
                    .field_str("disposition", disposition.label())
                    .field_str("status", after.label())
                    .finish(),
            )
        }
        None => not_found(&format!("job {id}")),
    }
}

/// Stream a job's events as chunked JSONL until its channel closes.
fn stream_events(queue: &JobQueue, id: u64, stream: &TcpStream) -> std::io::Result<()> {
    let Some(events) = queue.events(id) else {
        let (status, body) = not_found(&format!("job {id}"));
        return http::write_response(&mut &*stream, status, &body);
    };
    let mut chunked = ChunkedWriter::begin(stream, 200, "application/jsonl")?;
    let mut from = 0;
    loop {
        let (lines, closed) = events.wait_at(from, EVENT_POLL);
        for line in &lines {
            chunked.write_chunk(&format!("{line}\n"))?;
        }
        from += lines.len();
        if closed && from >= events.len() {
            break;
        }
    }
    chunked.finish()
}

/// Serve one connection: read a request, dispatch it, write the
/// response.  I/O errors (including a client hanging up mid-stream) are
/// swallowed — the connection is this function's whole world.
pub fn handle_connection(stream: TcpStream, queue: &JobQueue) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => return,
        });
        match http::read_request(&mut reader) {
            Ok(request) => request,
            Err(_) => {
                let body = JsonObject::new()
                    .field_str("error", "malformed HTTP request")
                    .field_raw("field", "null")
                    .finish();
                let _ = http::write_response(&mut &stream, 400, &body);
                return;
            }
        }
    };
    queue.record_request();

    // The event stream writes its own (chunked) response.
    if let Some((id, JobRoute::Events)) = job_path(&request.path) {
        if request.method == "GET" {
            let _ = stream_events(queue, id, &stream);
            return;
        }
    }

    // The metrics endpoint picks its content type from the query
    // string, so it writes its own (fixed-length) response too.
    if request.method == "GET" && request.path == "/v1/metrics" {
        let (content_type, body) = match request.query.as_deref() {
            Some("format=prometheus") => ("text/plain; version=0.0.4", queue.metrics_prometheus()),
            _ => ("application/json", queue.metrics_json()),
        };
        let _ = http::write_response_typed(&mut &stream, 200, content_type, &body);
        return;
    }

    let (status, body) = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/solve") => post_solve(queue, &request),
        ("GET", "/v1/jobs") => list_jobs(queue),
        (method, path) => match job_path(path) {
            Some((id, JobRoute::Status)) if method == "GET" => get_job(queue, id),
            Some((id, JobRoute::Status)) if method == "DELETE" => delete_job(queue, id),
            Some((id, JobRoute::Trace)) if method == "GET" => get_trace(queue, id),
            Some((id, JobRoute::Resume)) if method == "POST" => resume_job(queue, id),
            Some(_) => (
                405,
                JsonObject::new()
                    .field_str("error", "method not allowed on this path")
                    .field_raw("field", "null")
                    .finish(),
            ),
            None if path == "/v1/solve" || path == "/v1/metrics" || path == "/v1/jobs" => (
                405,
                JsonObject::new()
                    .field_str("error", "method not allowed on this path")
                    .field_raw("field", "null")
                    .finish(),
            ),
            None => not_found(&format!("path '{path}'")),
        },
    };
    let _ = http::write_response(&mut &stream, status, &body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_paths_parse() {
        assert_eq!(job_path("/v1/jobs/7"), Some((7, JobRoute::Status)));
        assert_eq!(job_path("/v1/jobs/7/events"), Some((7, JobRoute::Events)));
        assert_eq!(job_path("/v1/jobs/7/trace"), Some((7, JobRoute::Trace)));
        assert_eq!(job_path("/v1/jobs/7/resume"), Some((7, JobRoute::Resume)));
        assert_eq!(job_path("/v1/jobs/"), None);
        assert_eq!(job_path("/v1/jobs/x"), None);
        assert_eq!(job_path("/v1/jobs/x/resume"), None);
        assert_eq!(job_path("/v1/solve"), None);
        assert_eq!(job_path("/v1/jobs/7/extra"), None);
    }

    #[test]
    fn error_bodies_carry_the_field() {
        let body = error_body(&Error::invalid_problem("nx", "zero"));
        assert!(body.contains("\"field\":\"nx\""));
        let body = error_body(&Error::Cancelled { outer: 1 });
        assert!(body.contains("\"field\":null"));
    }
}
