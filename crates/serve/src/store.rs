//! The content-addressed result cache.
//!
//! Solves are deterministic — the same [`Problem`] produces the same
//! flux, bit for bit — so a finished outcome can be replayed for any
//! later request with an equal configuration.  The cache key is
//! [`Problem::canonical_hash`]: a stable FNV-1a over the canonical wire
//! serialisation, identical across processes and platforms.
//!
//! The store keeps the *rendered* outcome JSON rather than the outcome
//! struct: replaying a hit must be bit-for-bit identical to the first
//! response, and freezing the bytes at completion time makes that true
//! by construction (wall-clock fields included — a cached response is a
//! replay of the original run, not a re-measurement).
//!
//! Eviction is least-recently-used over a fixed capacity; a capacity of
//! zero disables caching entirely (every lookup misses, nothing is
//! retained).  Hit/miss counters live in the server's
//! [`MetricsRegistry`](unsnap_obs::MetricsRegistry), not here, so
//! `/v1/metrics` is the single source of truth.
//!
//! [`Problem`]: unsnap_core::problem::Problem
//! [`Problem::canonical_hash`]: unsnap_core::problem::Problem::canonical_hash

/// An in-memory LRU of rendered outcome JSON keyed by canonical problem
/// hash (see the [module docs](self)).
#[derive(Debug)]
pub struct ResultStore {
    capacity: usize,
    /// Pairs in LRU order: front = coldest, back = hottest.
    entries: Vec<(u64, String)>,
}

impl ResultStore {
    /// An empty store retaining at most `capacity` outcomes (0 disables
    /// caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Outcomes currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a hash, promoting a hit to most-recently-used.
    pub fn get(&mut self, hash: u64) -> Option<String> {
        let index = self.entries.iter().position(|(h, _)| *h == hash)?;
        let entry = self.entries.remove(index);
        let json = entry.1.clone();
        self.entries.push(entry);
        Some(json)
    }

    /// Insert (or refresh) an outcome, evicting the least-recently-used
    /// entry when over capacity.  A no-op when caching is disabled.
    pub fn insert(&mut self, hash: u64, outcome_json: String) {
        if self.capacity == 0 {
            return;
        }
        if let Some(index) = self.entries.iter().position(|(h, _)| *h == hash) {
            self.entries.remove(index);
        }
        self.entries.push((hash, outcome_json));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_replay_the_exact_bytes() {
        let mut store = ResultStore::new(4);
        assert!(store.is_empty());
        store.insert(7, "{\"a\":1}".to_string());
        assert_eq!(store.get(7).as_deref(), Some("{\"a\":1}"));
        assert_eq!(store.get(8), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut store = ResultStore::new(2);
        store.insert(1, "one".into());
        store.insert(2, "two".into());
        // Touch 1 so 2 becomes the coldest entry.
        assert!(store.get(1).is_some());
        store.insert(3, "three".into());
        assert_eq!(store.len(), 2);
        assert!(store.get(2).is_none(), "coldest entry must be evicted");
        assert!(store.get(1).is_some());
        assert!(store.get(3).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_duplicating() {
        let mut store = ResultStore::new(2);
        store.insert(1, "old".into());
        store.insert(1, "new".into());
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(1).as_deref(), Some("new"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut store = ResultStore::new(0);
        store.insert(1, "x".into());
        assert!(store.is_empty());
        assert_eq!(store.get(1), None);
    }
}
