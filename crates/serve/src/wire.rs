//! Request-body parsing and the error → HTTP status mapping.
//!
//! The solve endpoint accepts one JSON shape:
//!
//! ```json
//! {"problem": "quickstart"}
//! {"problem": {"grid": {"nx": 5}, "iteration": {"strategy": "gmres"}}}
//! ```
//!
//! — either a name from [`Problem::registry_names`] or an inline
//! document in the canonical wire format of [`unsnap_core::wire`].  Both
//! paths funnel into the same validated [`Problem`], so a request can
//! never enqueue a configuration the builder would reject.
//!
//! The status mapping turns the workspace's typed
//! [`Error`] into the HTTP vocabulary:
//! client-caused validation failures are 400s, cancellation surfaces as
//! 409 (the job is in a conflicting state, not broken), an over-full
//! queue is 503 (try again), and everything else — solver-internal
//! breakdowns a well-formed request can still trigger — is a 500.

use unsnap_core::error::Error;
use unsnap_core::problem::Problem;
use unsnap_core::wire as core_wire;
use unsnap_obs::reader::{self, JsonValue};

/// Parse a `POST /v1/solve` body into a validated [`Problem`].
pub fn parse_solve_request(body: &str) -> Result<Problem, Error> {
    let value = reader::parse(body)
        .map_err(|e| Error::invalid_problem("problem", format!("malformed JSON: {e}")))?;
    let Some(fields) = value.as_object() else {
        return Err(Error::invalid_problem(
            "problem",
            "the request body must be a JSON object with a 'problem' member",
        ));
    };
    let mut problem_value: Option<&JsonValue> = None;
    for (key, v) in fields {
        match key.as_str() {
            "problem" => problem_value = Some(v),
            other => {
                return Err(Error::invalid_problem(
                    "problem",
                    format!("unknown request member '{other}'; expected only 'problem'"),
                ));
            }
        }
    }
    let Some(problem_value) = problem_value else {
        return Err(Error::invalid_problem(
            "problem",
            "the request body has no 'problem' member",
        ));
    };
    match problem_value {
        JsonValue::String(name) => Problem::from_name(name),
        JsonValue::Object(_) => core_wire::builder_from_json(problem_value)?.build(),
        other => Err(Error::invalid_problem(
            "problem",
            format!(
                "'problem' must be a registry name or a configuration object, got {}",
                match other {
                    JsonValue::Null => "null",
                    JsonValue::Bool(_) => "a boolean",
                    JsonValue::Number(_) => "a number",
                    JsonValue::Array(_) => "an array",
                    _ => "something else",
                }
            ),
        )),
    }
}

/// The HTTP status code a typed [`Error`] maps to (see the
/// [module docs](self)).
pub fn status_for(error: &Error) -> u16 {
    match error {
        Error::InvalidProblem { .. } => 400,
        Error::Cancelled { .. } => 409,
        Error::Execution { .. } => 503,
        _ => 500,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_core::builder::ProblemBuilder;

    #[test]
    fn named_problems_resolve_through_the_registry() {
        let problem = parse_solve_request(r#"{"problem": "quickstart"}"#).unwrap();
        assert_eq!(problem, Problem::quickstart());
        let err = parse_solve_request(r#"{"problem": "nonsense"}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("problem"));
        assert_eq!(status_for(&err), 400);
    }

    #[test]
    fn inline_documents_parse_and_validate() {
        let problem = parse_solve_request(r#"{"problem": {"grid": {"nx": 5}}}"#).unwrap();
        assert_eq!(
            problem,
            ProblemBuilder::tiny().cells(5, 3, 3).build().unwrap()
        );
        // Builder validation runs: nx = 0 is a 400, not an enqueued job.
        let err = parse_solve_request(r#"{"problem": {"grid": {"nx": 0}}}"#).unwrap_err();
        assert_eq!(status_for(&err), 400);
    }

    #[test]
    fn malformed_bodies_are_client_errors() {
        for body in [
            "",
            "not json",
            "[]",
            "{}",
            r#"{"problem": 7}"#,
            r#"{"problem": "tiny", "extra": 1}"#,
        ] {
            let err = parse_solve_request(body).unwrap_err();
            assert_eq!(status_for(&err), 400, "body {body:?} must map to 400");
        }
    }

    #[test]
    fn status_mapping_covers_the_error_domains() {
        assert_eq!(status_for(&Error::Cancelled { outer: 2 }), 409);
        assert_eq!(
            status_for(&Error::Execution {
                reason: "queue full".into()
            }),
            503
        );
        assert_eq!(
            status_for(&Error::Singular {
                column: 0,
                pivot: 0.0
            }),
            500
        );
        assert_eq!(
            status_for(&Error::Comm {
                reason: "halo".into()
            }),
            500
        );
    }
}
