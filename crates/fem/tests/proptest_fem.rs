//! Property-based tests of the finite-element substrate.
//!
//! Invariants checked with randomised element orders, quadrature orders
//! and (twisted / stretched) cell geometries:
//!
//! * partition of unity of the Lagrange basis at arbitrary points;
//! * quadrature exactness on the monomials it must integrate;
//! * mass-matrix row sums integrate the basis (total = cell volume);
//! * the integration-by-parts identity `G + Gᵀ = ∮ φ_i φ_j n dS`;
//! * face areas of a closed cell sum to a zero net area vector.

use proptest::prelude::*;

use unsnap_fem::element::ReferenceElement;
use unsnap_fem::face::FACES;
use unsnap_fem::geometry::HexVertices;
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_fem::lagrange::LagrangeBasis1d;
use unsnap_fem::quadrature::gauss_legendre;

/// Strategy: a mildly deformed hexahedral cell (stretched box with a
/// rotation of the top face, like the UnSNAP twist but larger).
fn random_cell() -> impl Strategy<Value = HexVertices> {
    (0.5f64..2.0, 0.5f64..2.0, 0.5f64..2.0, 0.0f64..0.3).prop_map(|(lx, ly, lz, angle)| {
        let mut hex = HexVertices::axis_aligned([0.0; 3], [lx, ly, lz]);
        let (s, c) = angle.sin_cos();
        for corner in hex.corners.iter_mut().skip(4) {
            let x = corner[0] - lx / 2.0;
            let y = corner[1] - ly / 2.0;
            corner[0] = lx / 2.0 + c * x - s * y;
            corner[1] = ly / 2.0 + s * x + c * y;
        }
        hex
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lagrange_partition_of_unity(order in 1usize..6, x in -1.0f64..1.0) {
        let basis = LagrangeBasis1d::new(order);
        let sum: f64 = basis.values(x).iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let dsum: f64 = basis.derivatives(x).iter().sum();
        prop_assert!(dsum.abs() < 1e-8);
    }

    #[test]
    fn quadrature_integrates_monomials(n in 1usize..10, k in 0usize..8) {
        prop_assume!(k < 2 * n);
        let rule = gauss_legendre(n);
        let exact = if k % 2 == 1 { 0.0 } else { 2.0 / (k as f64 + 1.0) };
        let approx = rule.integrate(|x| x.powi(k as i32));
        prop_assert!((approx - exact).abs() < 1e-10);
    }

    #[test]
    fn mass_matrix_total_equals_volume(order in 1usize..4, hex in random_cell()) {
        let element = ReferenceElement::new(order);
        let ints = ElementIntegrals::compute(&element, &hex);
        let total: f64 = ints.mass.as_slice().iter().sum();
        prop_assert!((total - ints.volume).abs() < 1e-8 * ints.volume.max(1.0));
        prop_assert!(ints.volume > 0.0);
    }

    #[test]
    fn integration_by_parts_identity(order in 1usize..3, hex in random_cell()) {
        let element = ReferenceElement::new(order);
        let ints = ElementIntegrals::compute(&element, &hex);
        let n = ints.nodes_per_element();
        for d in 0..3 {
            // Scatter the face matrices to element-local indices.
            let mut surface = vec![0.0f64; n * n];
            for f in &ints.faces {
                for (a, &ia) in f.node_indices.iter().enumerate() {
                    for (b, &ib) in f.node_indices.iter().enumerate() {
                        surface[ia * n + ib] += f.matrices[d][(a, b)];
                    }
                }
            }
            for i in 0..n {
                for j in 0..n {
                    let lhs = ints.stream[d][(i, j)] + ints.stream[d][(j, i)];
                    prop_assert!((lhs - surface[i * n + j]).abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn closed_surface_has_zero_net_area_vector(hex in random_cell()) {
        let element = ReferenceElement::new(1);
        let ints = ElementIntegrals::compute(&element, &hex);
        // Net area vector = Σ_faces Σ_ab ∫ φ_a φ_b n dS.
        let mut net = [0.0f64; 3];
        for f in &ints.faces {
            for d in 0..3 {
                net[d] += f.matrices[d].as_slice().iter().sum::<f64>();
            }
            prop_assert!(f.area > 0.0);
        }
        for v in net {
            prop_assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn basis_is_interpolatory_at_nodes(order in 1usize..4) {
        let element = ReferenceElement::new(order);
        for i in 0..element.nodes_per_element() {
            let vals = element.eval_basis(element.node_coordinate(i));
            for (j, v) in vals.iter().enumerate() {
                let expected = if i == j { 1.0 } else { 0.0 };
                prop_assert!((v - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn face_classification_is_antisymmetric(
        hex in random_cell(),
        ox in prop_oneof![-1.0f64..-0.1, 0.1f64..1.0],
        oy in prop_oneof![-1.0f64..-0.1, 0.1f64..1.0],
        oz in prop_oneof![-1.0f64..-0.1, 0.1f64..1.0],
    ) {
        // For any direction, a convex cell has at least one inflow and one
        // outflow face, and flipping the direction swaps the classification.
        let element = ReferenceElement::new(1);
        let ints = ElementIntegrals::compute(&element, &hex);
        let omega = [ox, oy, oz];
        let neg = [-ox, -oy, -oz];
        let mut inflow = 0;
        let mut outflow = 0;
        for &f in &FACES {
            let d1 = ints.face(f).direction_dot_normal(omega);
            let d2 = ints.face(f).direction_dot_normal(neg);
            prop_assert!((d1 + d2).abs() < 1e-12);
            if d1 > 0.0 { outflow += 1 } else if d1 < 0.0 { inflow += 1 }
        }
        prop_assert!(inflow >= 1);
        prop_assert!(outflow >= 1);
    }
}
