//! # unsnap-fem
//!
//! Arbitrary-order Lagrange hexahedral finite elements for the UnSNAP
//! discontinuous Galerkin transport discretisation.
//!
//! The spatial discretisation in the paper (§II-B) multiplies the transport
//! equation by a test function, integrates over each hexahedral element,
//! and integrates the streaming (gradient) term by parts.  Because the
//! discretisation is *discontinuous*, every element carries its own set of
//! `(p + 1)³` Lagrange nodes — nodes that share a physical position with a
//! neighbouring element are separate unknowns.  The per-element weak form
//! needs three families of precomputed basis-pair integrals:
//!
//! * the **mass matrix** `M_ij = ∫ φ_i φ_j dV` (collision term),
//! * the **streaming matrices** `G^d_ij = ∫ (∂φ_i/∂x_d) φ_j dV` for each
//!   Cartesian direction `d` (gradient term after integration by parts),
//! * the **face matrices** `F^f_ij = ∫_f φ_i φ_j n dS` for each of the six
//!   faces (surface terms: outflow contributions go into the system matrix,
//!   inflow contributions pick up the upwind neighbour's flux and go into
//!   the right-hand side).
//!
//! This crate provides:
//!
//! * [`quadrature`] — Gauss–Legendre rules in 1-D, tensor-product rules on
//!   the reference hexahedron and its faces;
//! * [`lagrange`] — 1-D Lagrange interpolation bases on equispaced nodes;
//! * [`element`] — the tensor-product reference element of arbitrary order
//!   (basis values/gradients at quadrature points, node ordering, the
//!   matrix-size/footprint data of Table I);
//! * [`geometry`] — the trilinear (Q1) geometric map from the reference
//!   cube to a possibly twisted physical hexahedron, its Jacobians and face
//!   area vectors;
//! * [`integrals`] — assembly of the per-element integral families above,
//!   either precomputed and stored per element (the paper's approach) or
//!   computed on the fly;
//! * [`face`] — face-local node enumeration and the node correspondence
//!   between the two sides of a conforming interior face.
//!
//! ## Example
//!
//! ```
//! use unsnap_fem::element::ReferenceElement;
//! use unsnap_fem::geometry::HexVertices;
//! use unsnap_fem::integrals::ElementIntegrals;
//!
//! let element = ReferenceElement::new(1);          // linear: 8 nodes
//! assert_eq!(element.nodes_per_element(), 8);
//! let hex = HexVertices::unit_cube();
//! let integrals = ElementIntegrals::compute(&element, &hex);
//! // The mass matrix of the unit cube integrates to its volume.
//! let total: f64 = integrals.mass.as_slice().iter().sum();
//! assert!((total - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod element;
pub mod face;
pub mod geometry;
pub mod integrals;
pub mod lagrange;
pub mod quadrature;

pub use element::ReferenceElement;
pub use face::{Face, FACES};
pub use geometry::HexVertices;
pub use integrals::ElementIntegrals;
pub use quadrature::{gauss_legendre, QuadratureRule};
