//! 1-D Lagrange interpolation bases on equispaced nodes.
//!
//! The UnSNAP elements are tensor products of 1-D Lagrange bases of order
//! `p` with `p + 1` equispaced nodes spanning `[-1, 1]` (the vertices of
//! the reference interval are always nodes, so the element's corner,
//! edge, face and interior nodes of Figure 1 of the paper fall out of the
//! tensor product).

use serde::{Deserialize, Serialize};

/// A 1-D Lagrange basis of order `p` with `p + 1` equispaced nodes on
/// `[-1, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LagrangeBasis1d {
    order: usize,
    nodes: Vec<f64>,
    /// Barycentric weights `w_i = 1 / Π_{j≠i} (x_i - x_j)`.
    bary_weights: Vec<f64>,
}

impl LagrangeBasis1d {
    /// Create the basis of polynomial order `p` (so `p + 1` nodes).
    pub fn new(order: usize) -> Self {
        let n = order + 1;
        let nodes: Vec<f64> = if order == 0 {
            vec![0.0]
        } else {
            (0..n)
                .map(|i| -1.0 + 2.0 * i as f64 / order as f64)
                .collect()
        };
        let mut bary_weights = vec![1.0; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    bary_weights[i] /= nodes[i] - nodes[j];
                }
            }
        }
        Self {
            order,
            nodes,
            bary_weights,
        }
    }

    /// Polynomial order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of nodes (`order + 1`).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node positions on `[-1, 1]`.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Evaluate basis function `i` at `x`.
    ///
    /// `ℓ_i(x) = Π_{j≠i} (x − x_j) / (x_i − x_j)`.
    pub fn value(&self, i: usize, x: f64) -> f64 {
        let n = self.nodes.len();
        debug_assert!(i < n);
        let mut v = 1.0;
        for j in 0..n {
            if j != i {
                v *= (x - self.nodes[j]) / (self.nodes[i] - self.nodes[j]);
            }
        }
        v
    }

    /// Evaluate the derivative of basis function `i` at `x`.
    ///
    /// `ℓ_i'(x) = Σ_{k≠i} [ 1/(x_i − x_k) · Π_{j≠i,k} (x − x_j)/(x_i − x_j) ]`.
    pub fn derivative(&self, i: usize, x: f64) -> f64 {
        let n = self.nodes.len();
        debug_assert!(i < n);
        let mut acc = 0.0;
        for k in 0..n {
            if k == i {
                continue;
            }
            let mut term = 1.0 / (self.nodes[i] - self.nodes[k]);
            for j in 0..n {
                if j != i && j != k {
                    term *= (x - self.nodes[j]) / (self.nodes[i] - self.nodes[j]);
                }
            }
            acc += term;
        }
        acc
    }

    /// Evaluate all basis functions at `x` into a freshly allocated vector.
    pub fn values(&self, x: f64) -> Vec<f64> {
        (0..self.num_nodes()).map(|i| self.value(i, x)).collect()
    }

    /// Evaluate all basis derivatives at `x` into a freshly allocated
    /// vector.
    pub fn derivatives(&self, x: f64) -> Vec<f64> {
        (0..self.num_nodes())
            .map(|i| self.derivative(i, x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_span_interval() {
        for p in 1..=5 {
            let b = LagrangeBasis1d::new(p);
            assert_eq!(b.num_nodes(), p + 1);
            assert_eq!(b.order(), p);
            assert!((b.nodes()[0] + 1.0).abs() < 1e-15);
            assert!((b.nodes()[p] - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn order_zero_is_constant_one() {
        let b = LagrangeBasis1d::new(0);
        assert_eq!(b.num_nodes(), 1);
        assert_eq!(b.value(0, 0.3), 1.0);
        assert_eq!(b.derivative(0, 0.3), 0.0);
    }

    #[test]
    fn kronecker_delta_at_nodes() {
        for p in 1..=4 {
            let b = LagrangeBasis1d::new(p);
            for i in 0..=p {
                for j in 0..=p {
                    let v = b.value(i, b.nodes()[j]);
                    let expected = if i == j { 1.0 } else { 0.0 };
                    assert!((v - expected).abs() < 1e-12, "p = {p}, l_{i}(x_{j}) = {v}");
                }
            }
        }
    }

    #[test]
    fn partition_of_unity() {
        for p in 1..=5 {
            let b = LagrangeBasis1d::new(p);
            for &x in &[-1.0, -0.7, -0.1, 0.0, 0.33, 0.9, 1.0] {
                let sum: f64 = b.values(x).iter().sum();
                assert!((sum - 1.0).abs() < 1e-11, "p = {p}, x = {x}: {sum}");
                let dsum: f64 = b.derivatives(x).iter().sum();
                assert!(
                    dsum.abs() < 1e-10,
                    "p = {p}, x = {x}: derivative sum {dsum}"
                );
            }
        }
    }

    #[test]
    fn linear_basis_matches_hat_functions() {
        let b = LagrangeBasis1d::new(1);
        assert!((b.value(0, 0.0) - 0.5).abs() < 1e-15);
        assert!((b.value(1, 0.0) - 0.5).abs() < 1e-15);
        assert!((b.derivative(0, 0.3) + 0.5).abs() < 1e-15);
        assert!((b.derivative(1, -0.9) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn reproduces_polynomials_of_matching_degree() {
        // Interpolating x^p at the nodes and evaluating elsewhere must be exact.
        for p in 1..=4 {
            let b = LagrangeBasis1d::new(p);
            let f = |x: f64| x.powi(p as i32) - 0.5 * x + 1.0;
            for &x in &[-0.63, 0.11, 0.87] {
                let interp: f64 = (0..=p).map(|i| f(b.nodes()[i]) * b.value(i, x)).sum();
                assert!((interp - f(x)).abs() < 1e-10, "p = {p}, x = {x}");
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let b = LagrangeBasis1d::new(3);
        let h = 1e-6;
        for i in 0..4 {
            for &x in &[-0.5, 0.2, 0.75] {
                let fd = (b.value(i, x + h) - b.value(i, x - h)) / (2.0 * h);
                let an = b.derivative(i, x);
                assert!((fd - an).abs() < 1e-6, "i = {i}, x = {x}: {fd} vs {an}");
            }
        }
    }
}
