//! Trilinear (Q1) geometric mapping from the reference cube to a physical,
//! possibly twisted, hexahedral cell.
//!
//! UnSNAP builds its unstructured mesh by constructing the original SNAP
//! structured mesh and then *twisting* it slightly along one axis so that
//! cells are no longer perfect cubes (§III of the paper).  The geometry of
//! each cell is therefore fully described by its eight corner vertices and
//! the standard trilinear map; higher-order solution nodes are placed by
//! the same map (sub-parametric elements).

use serde::{Deserialize, Serialize};

use crate::face::Face;

/// The eight corner vertices of a hexahedral cell.
///
/// Vertex ordering matches the linear reference-element node ordering:
/// `c = i + 2 j + 4 k` with `i, j, k ∈ {0, 1}` along ξ, η, ζ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HexVertices {
    /// Corner coordinates, vertex-major.
    pub corners: [[f64; 3]; 8],
}

impl HexVertices {
    /// The unit cube `[0, 1]³`.
    pub fn unit_cube() -> Self {
        Self::axis_aligned([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
    }

    /// An axis-aligned box from `lo` to `hi`.
    pub fn axis_aligned(lo: [f64; 3], hi: [f64; 3]) -> Self {
        let mut corners = [[0.0; 3]; 8];
        for (c, corner) in corners.iter_mut().enumerate() {
            let i = c & 1;
            let j = (c >> 1) & 1;
            let k = (c >> 2) & 1;
            corner[0] = if i == 0 { lo[0] } else { hi[0] };
            corner[1] = if j == 0 { lo[1] } else { hi[1] };
            corner[2] = if k == 0 { lo[2] } else { hi[2] };
        }
        Self { corners }
    }

    /// Trilinear shape function of corner `c` at reference point `xi`.
    #[inline]
    pub fn shape(c: usize, xi: [f64; 3]) -> f64 {
        let i = (c & 1) as f64;
        let j = ((c >> 1) & 1) as f64;
        let k = ((c >> 2) & 1) as f64;
        0.125
            * (1.0 + (2.0 * i - 1.0) * xi[0])
            * (1.0 + (2.0 * j - 1.0) * xi[1])
            * (1.0 + (2.0 * k - 1.0) * xi[2])
    }

    /// Gradient (w.r.t. reference coordinates) of the trilinear shape
    /// function of corner `c` at `xi`.
    #[inline]
    pub fn shape_gradient(c: usize, xi: [f64; 3]) -> [f64; 3] {
        let si = 2.0 * ((c & 1) as f64) - 1.0;
        let sj = 2.0 * (((c >> 1) & 1) as f64) - 1.0;
        let sk = 2.0 * (((c >> 2) & 1) as f64) - 1.0;
        [
            0.125 * si * (1.0 + sj * xi[1]) * (1.0 + sk * xi[2]),
            0.125 * (1.0 + si * xi[0]) * sj * (1.0 + sk * xi[2]),
            0.125 * (1.0 + si * xi[0]) * (1.0 + sj * xi[1]) * sk,
        ]
    }

    /// Map a reference point to physical coordinates.
    pub fn map(&self, xi: [f64; 3]) -> [f64; 3] {
        let mut x = [0.0; 3];
        for c in 0..8 {
            let n = Self::shape(c, xi);
            for d in 0..3 {
                x[d] += n * self.corners[c][d];
            }
        }
        x
    }

    /// Jacobian matrix `J[d][e] = ∂x_d / ∂ξ_e` at a reference point.
    pub fn jacobian(&self, xi: [f64; 3]) -> [[f64; 3]; 3] {
        let mut j = [[0.0; 3]; 3];
        for c in 0..8 {
            let g = Self::shape_gradient(c, xi);
            for d in 0..3 {
                for e in 0..3 {
                    j[d][e] += self.corners[c][d] * g[e];
                }
            }
        }
        j
    }

    /// Determinant of the Jacobian at a reference point.
    pub fn jacobian_det(&self, xi: [f64; 3]) -> f64 {
        det3(&self.jacobian(xi))
    }

    /// Inverse of the Jacobian at a reference point.
    ///
    /// Returns `None` if the Jacobian is (numerically) singular, which
    /// indicates a degenerate or inverted cell.
    pub fn jacobian_inverse(&self, xi: [f64; 3]) -> Option<[[f64; 3]; 3]> {
        inverse3(&self.jacobian(xi))
    }

    /// The (signed) area vector `n dS` of `face` at in-face quadrature
    /// point `xi`: a vector whose direction is the outward normal and
    /// whose magnitude is the surface Jacobian (so that summing
    /// `weight · |area_vector|` over the face rule gives the face area).
    pub fn face_area_vector(&self, face: Face, xi: [f64; 3]) -> [f64; 3] {
        let j = self.jacobian(xi);
        let axis = face.axis();
        let (a, b) = match axis {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        // Tangent vectors along the two in-face reference axes.
        let ta = [j[0][a], j[1][a], j[2][a]];
        let tb = [j[0][b], j[1][b], j[2][b]];
        let mut n = cross(ta, tb);
        // cross(e_a, e_b) points along +axis for axes (1,2)->0 and (0,1)->2
        // but along -axis for (0,2)->1; combine with the face sign so the
        // result is always outward.
        let parity = if axis == 1 { -1.0 } else { 1.0 };
        let sign = if face.is_positive() { 1.0 } else { -1.0 } * parity;
        for v in n.iter_mut() {
            *v *= sign;
        }
        n
    }

    /// Cell volume by quadrature of the Jacobian determinant.
    pub fn volume(&self, qpoints_per_dir: usize) -> f64 {
        crate::quadrature::hex_rule(qpoints_per_dir)
            .iter()
            .map(|p| p.weight * self.jacobian_det(p.xi))
            .sum()
    }

    /// Centroid of the eight corners.
    pub fn centroid(&self) -> [f64; 3] {
        let mut c = [0.0; 3];
        for corner in &self.corners {
            for d in 0..3 {
                c[d] += corner[d] / 8.0;
            }
        }
        c
    }
}

/// 3×3 determinant.
pub fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

/// 3×3 inverse; `None` if the determinant is ~0.
pub fn inverse3(m: &[[f64; 3]; 3]) -> Option<[[f64; 3]; 3]> {
    let d = det3(m);
    if d.abs() < 1e-300 {
        return None;
    }
    let inv_d = 1.0 / d;
    let mut inv = [[0.0; 3]; 3];
    inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_d;
    inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_d;
    inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_d;
    inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_d;
    inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_d;
    inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_d;
    inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_d;
    inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_d;
    inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_d;
    Some(inv)
}

/// Cross product of two 3-vectors.
#[inline]
pub fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

/// Dot product of two 3-vectors.
#[inline]
pub fn dot3(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Euclidean norm of a 3-vector.
#[inline]
pub fn norm3(a: [f64; 3]) -> f64 {
    dot3(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::FACES;

    fn twisted_cell(angle: f64) -> HexVertices {
        // Rotate the top face of the unit cube by `angle` about its centre
        // (a miniature version of the UnSNAP mesh twist).
        let mut hex = HexVertices::unit_cube();
        let (s, c) = angle.sin_cos();
        for corner in hex.corners.iter_mut().skip(4) {
            let x = corner[0] - 0.5;
            let y = corner[1] - 0.5;
            corner[0] = 0.5 + c * x - s * y;
            corner[1] = 0.5 + s * x + c * y;
        }
        hex
    }

    #[test]
    fn shape_functions_sum_to_one() {
        for &xi in &[[-1.0, -1.0, -1.0], [0.0, 0.0, 0.0], [0.3, -0.8, 0.5]] {
            let sum: f64 = (0..8).map(|c| HexVertices::shape(c, xi)).sum();
            assert!((sum - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn map_hits_corners() {
        let hex = HexVertices::axis_aligned([1.0, 2.0, 3.0], [2.0, 4.0, 6.0]);
        assert_eq!(hex.map([-1.0, -1.0, -1.0]), [1.0, 2.0, 3.0]);
        assert_eq!(hex.map([1.0, 1.0, 1.0]), [2.0, 4.0, 6.0]);
        assert_eq!(hex.map([1.0, -1.0, -1.0]), [2.0, 2.0, 3.0]);
        // Centre of the reference cube maps to the box centre.
        let c = hex.map([0.0, 0.0, 0.0]);
        assert_eq!(c, [1.5, 3.0, 4.5]);
    }

    #[test]
    fn jacobian_of_axis_aligned_box_is_diagonal() {
        let hex = HexVertices::axis_aligned([0.0; 3], [2.0, 4.0, 8.0]);
        let j = hex.jacobian([0.1, -0.3, 0.8]);
        for d in 0..3 {
            for e in 0..3 {
                if d == e {
                    assert!((j[d][e] - [1.0, 2.0, 4.0][d]).abs() < 1e-14);
                } else {
                    assert!(j[d][e].abs() < 1e-14);
                }
            }
        }
        assert!((hex.jacobian_det([0.0; 3]) - 8.0).abs() < 1e-13);
    }

    #[test]
    fn shape_gradient_matches_finite_difference() {
        let h = 1e-6;
        let xi = [0.2, -0.5, 0.7];
        for c in 0..8 {
            let g = HexVertices::shape_gradient(c, xi);
            for d in 0..3 {
                let mut xp = xi;
                let mut xm = xi;
                xp[d] += h;
                xm[d] -= h;
                let fd = (HexVertices::shape(c, xp) - HexVertices::shape(c, xm)) / (2.0 * h);
                assert!((fd - g[d]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn volume_of_boxes_and_twisted_cells() {
        let hex = HexVertices::axis_aligned([0.0; 3], [2.0, 3.0, 4.0]);
        assert!((hex.volume(2) - 24.0).abs() < 1e-11);
        // A small twist preserves the volume to first order (shear).
        let twisted = twisted_cell(0.001);
        assert!((twisted.volume(3) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn jacobian_inverse_round_trip() {
        let hex = twisted_cell(0.3);
        let xi = [0.25, -0.4, 0.6];
        let j = hex.jacobian(xi);
        let ji = hex.jacobian_inverse(xi).unwrap();
        for d in 0..3 {
            for e in 0..3 {
                let prod: f64 = (0..3).map(|k| j[d][k] * ji[k][e]).sum();
                let expected = if d == e { 1.0 } else { 0.0 };
                assert!((prod - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn degenerate_cell_has_no_inverse() {
        // All corners collapsed onto a plane.
        let mut hex = HexVertices::unit_cube();
        for corner in hex.corners.iter_mut() {
            corner[2] = 0.0;
        }
        assert!(hex.jacobian_inverse([0.0; 3]).is_none());
    }

    #[test]
    fn face_area_vectors_point_outward_and_sum_to_zero() {
        for hex in [
            HexVertices::unit_cube(),
            HexVertices::axis_aligned([0.0; 3], [2.0, 1.0, 3.0]),
            twisted_cell(0.2),
        ] {
            let centroid = hex.centroid();
            let mut total = [0.0; 3];
            for &face in &FACES {
                let pts = crate::quadrature::face_rule(2, face.axis(), face.is_positive());
                let mut face_vec = [0.0; 3];
                let mut face_centre = [0.0; 3];
                for p in &pts {
                    let av = hex.face_area_vector(face, p.xi);
                    for d in 0..3 {
                        face_vec[d] += p.weight * av[d];
                        face_centre[d] += hex.map(p.xi)[d] / pts.len() as f64;
                    }
                }
                // Outward: the area vector points away from the centroid.
                let out = [
                    face_centre[0] - centroid[0],
                    face_centre[1] - centroid[1],
                    face_centre[2] - centroid[2],
                ];
                assert!(dot3(face_vec, out) > 0.0, "face {face} normal not outward");
                for d in 0..3 {
                    total[d] += face_vec[d];
                }
            }
            // A closed surface has zero total area vector.
            assert!(norm3(total) < 1e-12);
        }
    }

    #[test]
    fn unit_cube_face_areas_are_one() {
        let hex = HexVertices::unit_cube();
        for &face in &FACES {
            let pts = crate::quadrature::face_rule(2, face.axis(), face.is_positive());
            let area: f64 = pts
                .iter()
                .map(|p| p.weight * norm3(hex.face_area_vector(face, p.xi)))
                .sum();
            assert!((area - 1.0).abs() < 1e-12, "face {face}: area = {area}");
        }
    }

    #[test]
    fn det_and_inverse_helpers() {
        let m = [[2.0, 0.0, 0.0], [0.0, 3.0, 0.0], [0.0, 0.0, 4.0]];
        assert_eq!(det3(&m), 24.0);
        let inv = inverse3(&m).unwrap();
        assert!((inv[0][0] - 0.5).abs() < 1e-15);
        assert!((inv[2][2] - 0.25).abs() < 1e-15);
        let singular = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]];
        assert!(inverse3(&singular).is_none());
    }

    #[test]
    fn cross_and_dot() {
        let x = [1.0, 0.0, 0.0];
        let y = [0.0, 1.0, 0.0];
        assert_eq!(cross(x, y), [0.0, 0.0, 1.0]);
        assert_eq!(dot3(x, y), 0.0);
        assert_eq!(norm3([3.0, 4.0, 0.0]), 5.0);
    }

    #[test]
    fn centroid_of_unit_cube() {
        assert_eq!(HexVertices::unit_cube().centroid(), [0.5, 0.5, 0.5]);
    }
}
