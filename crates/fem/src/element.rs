//! Tensor-product Lagrange reference element of arbitrary order.
//!
//! A reference element of order `p` has `(p + 1)³` nodes laid out as the
//! tensor product of the 1-D equispaced Lagrange nodes, with the ξ index
//! fastest:
//!
//! ```text
//! node(i, j, k) = i + (p + 1) · (j + (p + 1) · k)
//! ```
//!
//! The element tabulates basis values and reference-space gradients at the
//! volume quadrature points and at the quadrature points of each face, so
//! the per-element integral assembly in [`crate::integrals`] is a pure
//! accumulation loop with no polynomial evaluation in the hot path (this is
//! the "precomputed integration of basis function pairs" of §III-C of the
//! paper, split into its reference-element part here and its per-element
//! geometric part in `ElementIntegrals`).

use serde::{Deserialize, Serialize};

use crate::face::{Face, FACES};
use crate::lagrange::LagrangeBasis1d;
use crate::quadrature::{face_rule, hex_rule, FacePoint, VolumePoint};

/// Matrix dimension for an order-`p` element: `(p + 1)³`.
pub fn nodes_for_order(order: usize) -> usize {
    (order + 1) * (order + 1) * (order + 1)
}

/// FP64 footprint in bytes of the `n × n` local matrix for an order-`p`
/// element (the quantity tabulated in Table I of the paper).
pub fn local_matrix_footprint_bytes(order: usize) -> usize {
    let n = nodes_for_order(order);
    n * n * std::mem::size_of::<f64>()
}

/// A tensor-product Lagrange reference element with tabulated basis data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReferenceElement {
    order: usize,
    nodes_1d: usize,
    basis_1d: LagrangeBasis1d,
    /// Reference coordinates of every node, node-major.
    node_coords: Vec<[f64; 3]>,
    /// Volume quadrature points.
    volume_points: Vec<VolumePoint>,
    /// `phi_volume[q * n + i]`: basis `i` at volume point `q`.
    phi_volume: Vec<f64>,
    /// `dphi_volume[(q * n + i) * 3 + d]`: reference-space gradient
    /// component `d` of basis `i` at volume point `q`.
    dphi_volume: Vec<f64>,
    /// Face quadrature points for each of the six faces.
    face_points: Vec<Vec<FacePoint>>,
    /// `phi_face[f][q * n + i]`: basis `i` at point `q` of face `f`.
    phi_face: Vec<Vec<f64>>,
}

impl ReferenceElement {
    /// Build the reference element of polynomial order `p ≥ 1` with the
    /// default `(p + 1)`-point Gauss rule per direction.
    pub fn new(order: usize) -> Self {
        Self::with_quadrature(order, order + 1)
    }

    /// Build the reference element with an explicit number of quadrature
    /// points per direction (useful for over-integration tests).
    pub fn with_quadrature(order: usize, qpoints_per_dir: usize) -> Self {
        assert!(order >= 1, "UnSNAP elements are at least linear (order 1)");
        assert!(qpoints_per_dir >= 1);
        let basis_1d = LagrangeBasis1d::new(order);
        let n1 = order + 1;
        let n = nodes_for_order(order);

        // Node coordinates, ξ fastest.
        let mut node_coords = Vec::with_capacity(n);
        for k in 0..n1 {
            for j in 0..n1 {
                for i in 0..n1 {
                    node_coords.push([
                        basis_1d.nodes()[i],
                        basis_1d.nodes()[j],
                        basis_1d.nodes()[k],
                    ]);
                }
            }
        }

        let volume_points = hex_rule(qpoints_per_dir);
        let mut phi_volume = Vec::with_capacity(volume_points.len() * n);
        let mut dphi_volume = Vec::with_capacity(volume_points.len() * n * 3);
        for vp in &volume_points {
            let (vals, grads) = tabulate_at(&basis_1d, n1, vp.xi);
            phi_volume.extend_from_slice(&vals);
            dphi_volume.extend_from_slice(&grads);
        }

        let mut face_points = Vec::with_capacity(6);
        let mut phi_face = Vec::with_capacity(6);
        for &face in &FACES {
            let pts = face_rule(qpoints_per_dir, face.axis(), face.is_positive());
            let mut vals_all = Vec::with_capacity(pts.len() * n);
            for fp in &pts {
                let (vals, _) = tabulate_at(&basis_1d, n1, fp.xi);
                vals_all.extend_from_slice(&vals);
            }
            face_points.push(pts);
            phi_face.push(vals_all);
        }

        Self {
            order,
            nodes_1d: n1,
            basis_1d,
            node_coords,
            volume_points,
            phi_volume,
            dphi_volume,
            face_points,
            phi_face,
        }
    }

    /// Polynomial order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Nodes per direction, `p + 1`.
    pub fn nodes_per_direction(&self) -> usize {
        self.nodes_1d
    }

    /// Total nodes (and local matrix dimension), `(p + 1)³`.
    pub fn nodes_per_element(&self) -> usize {
        self.node_coords.len()
    }

    /// FP64 footprint in bytes of the local matrix (Table I).
    pub fn local_matrix_footprint_bytes(&self) -> usize {
        local_matrix_footprint_bytes(self.order)
    }

    /// The 1-D basis underlying the tensor product.
    pub fn basis_1d(&self) -> &LagrangeBasis1d {
        &self.basis_1d
    }

    /// Reference coordinates of node `i`.
    pub fn node_coordinate(&self, i: usize) -> [f64; 3] {
        self.node_coords[i]
    }

    /// Reference coordinates of all nodes, node-major.
    pub fn node_coordinates(&self) -> &[[f64; 3]] {
        &self.node_coords
    }

    /// Flatten a tensor index `(i, j, k)` to the node index.
    pub fn node_index(&self, i: usize, j: usize, k: usize) -> usize {
        i + self.nodes_1d * (j + self.nodes_1d * k)
    }

    /// Volume quadrature points.
    pub fn volume_points(&self) -> &[VolumePoint] {
        &self.volume_points
    }

    /// Basis values at volume quadrature point `q` (length `n` slice).
    pub fn phi_at_volume_point(&self, q: usize) -> &[f64] {
        let n = self.nodes_per_element();
        &self.phi_volume[q * n..(q + 1) * n]
    }

    /// Reference-space gradient of basis `i` at volume point `q`.
    pub fn grad_phi_at_volume_point(&self, q: usize, i: usize) -> [f64; 3] {
        let n = self.nodes_per_element();
        let base = (q * n + i) * 3;
        [
            self.dphi_volume[base],
            self.dphi_volume[base + 1],
            self.dphi_volume[base + 2],
        ]
    }

    /// Quadrature points of `face`.
    pub fn face_points(&self, face: Face) -> &[FacePoint] {
        &self.face_points[face.index()]
    }

    /// Basis values at point `q` of `face` (length `n` slice).
    pub fn phi_at_face_point(&self, face: Face, q: usize) -> &[f64] {
        let n = self.nodes_per_element();
        &self.phi_face[face.index()][q * n..(q + 1) * n]
    }

    /// Evaluate every basis function at an arbitrary reference point.
    pub fn eval_basis(&self, xi: [f64; 3]) -> Vec<f64> {
        tabulate_at(&self.basis_1d, self.nodes_1d, xi).0
    }

    /// Evaluate every basis gradient (reference space) at an arbitrary
    /// reference point; returns `n` rows of `[d/dξ, d/dη, d/dζ]`.
    pub fn eval_basis_gradients(&self, xi: [f64; 3]) -> Vec<[f64; 3]> {
        let flat = tabulate_at(&self.basis_1d, self.nodes_1d, xi).1;
        flat.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect()
    }
}

/// Evaluate all tensor-product basis values and reference gradients at a
/// reference point.  Returns `(values, gradients_flat)` where the gradient
/// buffer is `[n × 3]` row-major.
fn tabulate_at(basis: &LagrangeBasis1d, n1: usize, xi: [f64; 3]) -> (Vec<f64>, Vec<f64>) {
    let lx: Vec<f64> = (0..n1).map(|i| basis.value(i, xi[0])).collect();
    let ly: Vec<f64> = (0..n1).map(|j| basis.value(j, xi[1])).collect();
    let lz: Vec<f64> = (0..n1).map(|k| basis.value(k, xi[2])).collect();
    let dx: Vec<f64> = (0..n1).map(|i| basis.derivative(i, xi[0])).collect();
    let dy: Vec<f64> = (0..n1).map(|j| basis.derivative(j, xi[1])).collect();
    let dz: Vec<f64> = (0..n1).map(|k| basis.derivative(k, xi[2])).collect();

    let n = n1 * n1 * n1;
    let mut vals = Vec::with_capacity(n);
    let mut grads = Vec::with_capacity(n * 3);
    for k in 0..n1 {
        for j in 0..n1 {
            for i in 0..n1 {
                vals.push(lx[i] * ly[j] * lz[k]);
                grads.push(dx[i] * ly[j] * lz[k]);
                grads.push(lx[i] * dy[j] * lz[k]);
                grads.push(lx[i] * ly[j] * dz[k]);
            }
        }
    }
    (vals, grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::face_node_indices;

    #[test]
    fn table1_matrix_sizes_and_footprints() {
        // Table I of the paper.
        let expected = [
            (1usize, 8usize, 0.5f64),
            (2, 27, 5.7),
            (3, 64, 32.0),
            (4, 125, 122.1),
            (5, 216, 364.5),
        ];
        for (order, size, kb) in expected {
            assert_eq!(nodes_for_order(order), size);
            let footprint_kb = local_matrix_footprint_bytes(order) as f64 / 1024.0;
            assert!(
                (footprint_kb - kb).abs() < 0.06,
                "order {order}: {footprint_kb} kB vs paper {kb} kB"
            );
        }
    }

    #[test]
    fn node_count_and_coordinates() {
        for p in 1..=3 {
            let e = ReferenceElement::new(p);
            assert_eq!(e.nodes_per_element(), nodes_for_order(p));
            assert_eq!(e.nodes_per_direction(), p + 1);
            // First node is the (-1,-1,-1) corner, last is (1,1,1).
            assert_eq!(e.node_coordinate(0), [-1.0, -1.0, -1.0]);
            assert_eq!(
                e.node_coordinate(e.nodes_per_element() - 1),
                [1.0, 1.0, 1.0]
            );
        }
    }

    #[test]
    fn node_index_matches_layout() {
        let e = ReferenceElement::new(2);
        assert_eq!(e.node_index(0, 0, 0), 0);
        assert_eq!(e.node_index(1, 0, 0), 1);
        assert_eq!(e.node_index(0, 1, 0), 3);
        assert_eq!(e.node_index(0, 0, 1), 9);
        assert_eq!(e.node_index(2, 2, 2), 26);
    }

    #[test]
    fn basis_is_kronecker_delta_at_nodes() {
        for p in 1..=3 {
            let e = ReferenceElement::new(p);
            for i in 0..e.nodes_per_element() {
                let vals = e.eval_basis(e.node_coordinate(i));
                for (j, v) in vals.iter().enumerate() {
                    let expected = if i == j { 1.0 } else { 0.0 };
                    assert!((v - expected).abs() < 1e-11, "p={p}, i={i}, j={j}");
                }
            }
        }
    }

    #[test]
    fn partition_of_unity_at_quadrature_points() {
        for p in 1..=4 {
            let e = ReferenceElement::new(p);
            for q in 0..e.volume_points().len() {
                let sum: f64 = e.phi_at_volume_point(q).iter().sum();
                assert!((sum - 1.0).abs() < 1e-11);
                let grad_sum: [f64; 3] = (0..e.nodes_per_element()).fold([0.0; 3], |acc, i| {
                    let g = e.grad_phi_at_volume_point(q, i);
                    [acc[0] + g[0], acc[1] + g[1], acc[2] + g[2]]
                });
                for d in 0..3 {
                    assert!(grad_sum[d].abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn face_tabulation_has_zero_for_off_face_nodes() {
        for p in 1..=3 {
            let e = ReferenceElement::new(p);
            for &face in &FACES {
                let on_face = face_node_indices(face, p);
                for q in 0..e.face_points(face).len() {
                    let vals = e.phi_at_face_point(face, q);
                    let sum: f64 = vals.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-11);
                    for (i, v) in vals.iter().enumerate() {
                        if !on_face.contains(&i) {
                            assert!(
                                v.abs() < 1e-11,
                                "p={p} face={face} node {i} should vanish, got {v}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let e = ReferenceElement::new(2);
        let xi = [0.21, -0.4, 0.67];
        let grads = e.eval_basis_gradients(xi);
        let h = 1e-6;
        for i in 0..e.nodes_per_element() {
            for d in 0..3 {
                let mut xp = xi;
                let mut xm = xi;
                xp[d] += h;
                xm[d] -= h;
                let fd = (e.eval_basis(xp)[i] - e.eval_basis(xm)[i]) / (2.0 * h);
                assert!((fd - grads[i][d]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn quadrature_point_counts() {
        let e = ReferenceElement::new(2);
        assert_eq!(e.volume_points().len(), 27);
        assert_eq!(e.face_points(Face::XMinus).len(), 9);
        let e = ReferenceElement::with_quadrature(1, 3);
        assert_eq!(e.volume_points().len(), 27);
    }

    #[test]
    #[should_panic]
    fn order_zero_rejected() {
        let _ = ReferenceElement::new(0);
    }
}
