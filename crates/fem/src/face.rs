//! Faces of the reference hexahedron and the node correspondence across
//! conforming interior faces.
//!
//! The UnSNAP mesh is derived from a structured grid, so every interior
//! face is conforming: the `(p + 1)²` Lagrange nodes on one side coincide
//! geometrically with the nodes on the other side (they remain *separate
//! unknowns* — that is the "discontinuous" in discontinuous Galerkin, see
//! Figure 1b of the paper).  The upwind surface term therefore needs, for
//! each face, (a) which element-local nodes lie on it and (b) which node of
//! the neighbouring element matches each of them.

use serde::{Deserialize, Serialize};

/// One of the six axis-aligned faces of the reference hexahedron.
///
/// The names refer to the *reference* axes; after the geometric map (and
/// the UnSNAP mesh twist) the physical face need not be axis-aligned, but
/// the topological meaning is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Face {
    /// ξ = −1 face (towards the −x neighbour on an untwisted mesh).
    XMinus,
    /// ξ = +1 face.
    XPlus,
    /// η = −1 face.
    YMinus,
    /// η = +1 face.
    YPlus,
    /// ζ = −1 face.
    ZMinus,
    /// ζ = +1 face.
    ZPlus,
}

/// All six faces in index order (`Face::index` order).
pub const FACES: [Face; 6] = [
    Face::XMinus,
    Face::XPlus,
    Face::YMinus,
    Face::YPlus,
    Face::ZMinus,
    Face::ZPlus,
];

impl Face {
    /// Dense index 0..6 used to address per-face arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Face::XMinus => 0,
            Face::XPlus => 1,
            Face::YMinus => 2,
            Face::YPlus => 3,
            Face::ZMinus => 4,
            Face::ZPlus => 5,
        }
    }

    /// Build a face from its dense index.
    ///
    /// # Panics
    /// Panics if `index >= 6`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        FACES[index]
    }

    /// The reference axis normal to this face (0 = ξ, 1 = η, 2 = ζ).
    #[inline]
    pub fn axis(self) -> usize {
        self.index() / 2
    }

    /// `true` for the `+1` face of its axis, `false` for the `−1` face.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.index() % 2 == 1
    }

    /// The face on the opposite side of the element (the face of the
    /// neighbouring element that this face is glued to on a structured-
    /// derived mesh).
    #[inline]
    pub fn opposite(self) -> Self {
        match self {
            Face::XMinus => Face::XPlus,
            Face::XPlus => Face::XMinus,
            Face::YMinus => Face::YPlus,
            Face::YPlus => Face::YMinus,
            Face::ZMinus => Face::ZPlus,
            Face::ZPlus => Face::ZMinus,
        }
    }

    /// Outward unit normal of this face on the *reference* element.
    #[inline]
    pub fn reference_normal(self) -> [f64; 3] {
        let mut n = [0.0; 3];
        n[self.axis()] = if self.is_positive() { 1.0 } else { -1.0 };
        n
    }
}

impl std::fmt::Display for Face {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Face::XMinus => "x-",
            Face::XPlus => "x+",
            Face::YMinus => "y-",
            Face::YPlus => "y+",
            Face::ZMinus => "z-",
            Face::ZPlus => "z+",
        };
        f.write_str(s)
    }
}

/// Element-local indices of the nodes lying on `face` for a tensor-product
/// element of order `p`, in canonical `(u, v)` order.
///
/// The canonical order iterates the two in-face axes in ascending axis
/// order with the lower axis fastest, which makes the list directly
/// comparable with the list produced for the *opposite* face of the
/// neighbouring element: entry `m` of one list is geometrically coincident
/// with entry `m` of the other.
pub fn face_node_indices(face: Face, order: usize) -> Vec<usize> {
    let n1 = order + 1;
    let axis = face.axis();
    let fixed = if face.is_positive() { order } else { 0 };
    let (a, b) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let mut out = Vec::with_capacity(n1 * n1);
    for vb in 0..n1 {
        for ua in 0..n1 {
            let mut ijk = [0usize; 3];
            ijk[axis] = fixed;
            ijk[a] = ua;
            ijk[b] = vb;
            out.push(ijk[0] + n1 * (ijk[1] + n1 * ijk[2]));
        }
    }
    out
}

/// Number of nodes on one face of an order-`p` element: `(p + 1)²`.
pub fn nodes_per_face(order: usize) -> usize {
    (order + 1) * (order + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, &f) in FACES.iter().enumerate() {
            assert_eq!(f.index(), i);
            assert_eq!(Face::from_index(i), f);
        }
    }

    #[test]
    fn axis_and_sign() {
        assert_eq!(Face::XMinus.axis(), 0);
        assert_eq!(Face::YPlus.axis(), 1);
        assert_eq!(Face::ZPlus.axis(), 2);
        assert!(Face::XPlus.is_positive());
        assert!(!Face::ZMinus.is_positive());
    }

    #[test]
    fn opposite_is_involution() {
        for &f in &FACES {
            assert_eq!(f.opposite().opposite(), f);
            assert_eq!(f.opposite().axis(), f.axis());
            assert_ne!(f.opposite().is_positive(), f.is_positive());
        }
    }

    #[test]
    fn reference_normals_are_unit_axis_vectors() {
        for &f in &FACES {
            let n = f.reference_normal();
            let norm: f64 = n.iter().map(|x| x * x).sum::<f64>();
            assert_eq!(norm, 1.0);
            assert_eq!(n[f.axis()].signum() > 0.0, f.is_positive());
        }
    }

    #[test]
    fn face_node_counts() {
        for p in 1..=4 {
            for &f in &FACES {
                assert_eq!(face_node_indices(f, p).len(), nodes_per_face(p));
            }
        }
    }

    #[test]
    fn linear_face_nodes_are_correct_corners() {
        // Order 1: node index = i + 2j + 4k.
        let xm = face_node_indices(Face::XMinus, 1);
        assert_eq!(xm, vec![0, 2, 4, 6]); // i = 0
        let xp = face_node_indices(Face::XPlus, 1);
        assert_eq!(xp, vec![1, 3, 5, 7]); // i = 1
        let zp = face_node_indices(Face::ZPlus, 1);
        assert_eq!(zp, vec![4, 5, 6, 7]); // k = 1
    }

    #[test]
    fn opposite_faces_pair_up_by_position() {
        // For every order, the m-th node of face F and the m-th node of
        // F.opposite() must differ only in the coordinate along F's axis.
        for p in 1..=3 {
            let n1 = p + 1;
            let unpack = |idx: usize| [idx % n1, (idx / n1) % n1, idx / (n1 * n1)];
            for &f in &FACES {
                let mine = face_node_indices(f, p);
                let theirs = face_node_indices(f.opposite(), p);
                for (&a, &b) in mine.iter().zip(theirs.iter()) {
                    let pa = unpack(a);
                    let pb = unpack(b);
                    for axis in 0..3 {
                        if axis == f.axis() {
                            assert_ne!(pa[axis], pb[axis]);
                        } else {
                            assert_eq!(pa[axis], pb[axis]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn face_nodes_are_unique_and_in_range() {
        for p in 1..=4 {
            let total = (p + 1) * (p + 1) * (p + 1);
            for &f in &FACES {
                let idx = face_node_indices(f, p);
                let mut sorted = idx.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), idx.len());
                assert!(idx.iter().all(|&i| i < total));
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Face::XMinus.to_string(), "x-");
        assert_eq!(Face::ZPlus.to_string(), "z+");
    }
}
