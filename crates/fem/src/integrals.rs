//! Per-element basis-pair integrals: the data the UnSNAP assembly kernel
//! reads to build each local system.
//!
//! For an element with geometry `x(ξ)` (trilinear map of the eight cell
//! vertices) and order-`p` Lagrange basis `{φ_i}`, the transport weak form
//! needs:
//!
//! * `mass_ij       = ∫_K φ_i φ_j dV`
//! * `stream[d]_ij  = ∫_K (∂φ_i/∂x_d) φ_j dV`  for `d ∈ {x, y, z}`
//! * `face[f][d]_ab = ∫_{∂K_f} φ_a φ_b n_d dS` for each face `f`, where
//!   `a, b` run over the `(p + 1)²` nodes *on that face* and `n` is the
//!   outward normal (kept as a full vector so twisted, non-planar faces are
//!   integrated exactly).
//!
//! The paper's kernel reads "13 different arrays" during assembly; the
//! three families above are the per-element members of that set (the rest
//! are quadrature cosines, cross sections and flux/source arrays owned by
//! `unsnap-core`).  [`ElementIntegrals::compute`] produces them for one
//! element; `unsnap-core` stores one instance per mesh cell (the paper's
//! pre-computed approach) or recomputes them on the fly for the
//! memory-versus-time ablation.

use serde::{Deserialize, Serialize};

use unsnap_linalg::DenseMatrix;

use crate::element::ReferenceElement;
use crate::face::{face_node_indices, nodes_per_face, Face, FACES};
use crate::geometry::{dot3, HexVertices};

/// Integrals of one face of an element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaceIntegrals {
    /// Which face of the element this belongs to.
    pub face: Face,
    /// Element-local indices of the nodes on this face, in canonical
    /// order (see [`face_node_indices`]).
    pub node_indices: Vec<usize>,
    /// `matrices[d]` is the `(p+1)² × (p+1)²` matrix of
    /// `∫ φ_a φ_b n_d dS` over the face-local node numbering.
    pub matrices: [DenseMatrix; 3],
    /// Area-weighted average outward normal (unit length unless the face
    /// is degenerate).
    pub average_normal: [f64; 3],
    /// Total face area.
    pub area: f64,
}

impl FaceIntegrals {
    /// Contract the vector-valued face matrices with a direction:
    /// returns the `(p+1)² × (p+1)²` matrix of `∫ φ_a φ_b (Ω·n) dS`.
    pub fn directed(&self, omega: [f64; 3]) -> DenseMatrix {
        let nf = self.node_indices.len();
        let mut out = DenseMatrix::zeros(nf, nf);
        for a in 0..nf {
            for b in 0..nf {
                out[(a, b)] = omega[0] * self.matrices[0][(a, b)]
                    + omega[1] * self.matrices[1][(a, b)]
                    + omega[2] * self.matrices[2][(a, b)];
            }
        }
        out
    }

    /// `Ω · n̄` with the average outward normal — used to classify the face
    /// as inflow (`< 0`) or outflow (`> 0`) for a given sweep direction.
    pub fn direction_dot_normal(&self, omega: [f64; 3]) -> f64 {
        dot3(omega, self.average_normal)
    }
}

/// All precomputed integrals of one element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementIntegrals {
    /// Polynomial order of the element.
    pub order: usize,
    /// Mass matrix `∫ φ_i φ_j dV` (size `n × n`).
    pub mass: DenseMatrix,
    /// Streaming matrices `∫ (∂φ_i/∂x_d) φ_j dV` for `d = x, y, z`.
    pub stream: [DenseMatrix; 3],
    /// Face integrals for the six faces, indexed by [`Face::index`].
    pub faces: Vec<FaceIntegrals>,
    /// Element volume.
    pub volume: f64,
}

impl ElementIntegrals {
    /// Compute all integral families for one element.
    pub fn compute(element: &ReferenceElement, hex: &HexVertices) -> Self {
        let n = element.nodes_per_element();
        let mut mass = DenseMatrix::zeros(n, n);
        let mut stream = [
            DenseMatrix::zeros(n, n),
            DenseMatrix::zeros(n, n),
            DenseMatrix::zeros(n, n),
        ];
        let mut volume = 0.0;

        // Scratch: physical-space gradients of every basis function at the
        // current quadrature point.
        let mut grad_phys = vec![[0.0f64; 3]; n];

        for (q, vp) in element.volume_points().iter().enumerate() {
            let det = hex.jacobian_det(vp.xi);
            let jinv = hex
                .jacobian_inverse(vp.xi)
                .expect("degenerate element encountered during integration");
            let w = vp.weight * det;
            volume += w;
            let phi = element.phi_at_volume_point(q);
            for (i, g) in grad_phys.iter_mut().enumerate() {
                let gref = element.grad_phi_at_volume_point(q, i);
                // ∂φ/∂x_d = Σ_e ∂φ/∂ξ_e · ∂ξ_e/∂x_d = Σ_e J⁻¹[e][d] gref[e]
                for d in 0..3 {
                    g[d] = jinv[0][d] * gref[0] + jinv[1][d] * gref[1] + jinv[2][d] * gref[2];
                }
            }
            for i in 0..n {
                let phi_i = phi[i];
                let gi = grad_phys[i];
                let mass_row = mass.row_mut(i);
                for (j, &phi_j) in phi.iter().enumerate() {
                    mass_row[j] += w * phi_i * phi_j;
                }
                for d in 0..3 {
                    let row = stream[d].row_mut(i);
                    for (j, &phi_j) in phi.iter().enumerate() {
                        row[j] += w * gi[d] * phi_j;
                    }
                }
            }
        }

        let mut faces = Vec::with_capacity(6);
        for &face in &FACES {
            faces.push(Self::compute_face(element, hex, face));
        }

        Self {
            order: element.order(),
            mass,
            stream,
            faces,
            volume,
        }
    }

    fn compute_face(element: &ReferenceElement, hex: &HexVertices, face: Face) -> FaceIntegrals {
        let node_indices = face_node_indices(face, element.order());
        let nf = node_indices.len();
        let mut matrices = [
            DenseMatrix::zeros(nf, nf),
            DenseMatrix::zeros(nf, nf),
            DenseMatrix::zeros(nf, nf),
        ];
        let mut avg_normal = [0.0; 3];
        let mut area = 0.0;

        for (q, fp) in element.face_points(face).iter().enumerate() {
            let av = hex.face_area_vector(face, fp.xi);
            let ds = crate::geometry::norm3(av);
            area += fp.weight * ds;
            for d in 0..3 {
                avg_normal[d] += fp.weight * av[d];
            }
            let phi = element.phi_at_face_point(face, q);
            for (a, &ia) in node_indices.iter().enumerate() {
                let pa = phi[ia];
                if pa == 0.0 {
                    continue;
                }
                for (b, &ib) in node_indices.iter().enumerate() {
                    let pab = pa * phi[ib];
                    for d in 0..3 {
                        matrices[d][(a, b)] += fp.weight * pab * av[d];
                    }
                }
            }
        }

        let norm = crate::geometry::norm3(avg_normal);
        if norm > 0.0 {
            for v in avg_normal.iter_mut() {
                *v /= norm;
            }
        }

        FaceIntegrals {
            face,
            node_indices,
            matrices,
            average_normal: avg_normal,
            area,
        }
    }

    /// Matrix dimension (`(p + 1)³`).
    pub fn nodes_per_element(&self) -> usize {
        self.mass.rows()
    }

    /// Nodes per face (`(p + 1)²`).
    pub fn nodes_per_face(&self) -> usize {
        nodes_per_face(self.order)
    }

    /// Face integrals for a given face.
    pub fn face(&self, face: Face) -> &FaceIntegrals {
        &self.faces[face.index()]
    }

    /// Approximate storage footprint of the integrals in bytes.
    pub fn footprint_bytes(&self) -> usize {
        let n = self.nodes_per_element();
        let nf = self.nodes_per_face();
        (4 * n * n + 6 * 3 * nf * nf) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn twisted_cell(angle: f64) -> HexVertices {
        let mut hex = HexVertices::unit_cube();
        let (s, c) = angle.sin_cos();
        for corner in hex.corners.iter_mut().skip(4) {
            let x = corner[0] - 0.5;
            let y = corner[1] - 0.5;
            corner[0] = 0.5 + c * x - s * y;
            corner[1] = 0.5 + s * x + c * y;
        }
        hex
    }

    #[test]
    fn mass_matrix_sums_to_volume() {
        for order in 1..=3 {
            let e = ReferenceElement::new(order);
            for hex in [
                HexVertices::unit_cube(),
                HexVertices::axis_aligned([0.0; 3], [2.0, 1.0, 0.5]),
                twisted_cell(0.05),
            ] {
                let ints = ElementIntegrals::compute(&e, &hex);
                let total: f64 = ints.mass.as_slice().iter().sum();
                assert!(
                    (total - ints.volume).abs() < 1e-10,
                    "order {order}: Σ mass = {total}, volume = {}",
                    ints.volume
                );
                assert!((ints.volume - hex.volume(order + 2)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mass_matrix_is_symmetric_positive_diagonal() {
        let e = ReferenceElement::new(2);
        let ints = ElementIntegrals::compute(&e, &HexVertices::unit_cube());
        let n = ints.nodes_per_element();
        for i in 0..n {
            assert!(ints.mass[(i, i)] > 0.0);
            for j in 0..n {
                assert!((ints.mass[(i, j)] - ints.mass[(j, i)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn stream_matrix_rows_sum_to_face_flux_of_constant() {
        // For ψ ≡ 1, ∫ ∂φ_i/∂x_d dV = ∮ φ_i n_d dS (divergence theorem).
        // Summing over i: ∫ Σ_i ∂φ_i/∂x_d dV = 0 because Σφ_i = 1.
        let e = ReferenceElement::new(2);
        for hex in [HexVertices::unit_cube(), twisted_cell(0.1)] {
            let ints = ElementIntegrals::compute(&e, &hex);
            for d in 0..3 {
                let total: f64 = ints.stream[d].as_slice().iter().sum();
                assert!(total.abs() < 1e-10, "direction {d}: {total}");
            }
        }
    }

    #[test]
    fn streaming_plus_transpose_equals_surface_term() {
        // Integration by parts:
        //   ∫ (∂φ_i/∂x_d) φ_j + ∫ φ_i (∂φ_j/∂x_d) = ∮ φ_i φ_j n_d dS.
        // i.e. G[d] + G[d]^T must equal the sum over faces of the face
        // matrices (scattered to element-local indices).
        for order in [1usize, 2] {
            let e = ReferenceElement::new(order);
            for hex in [HexVertices::unit_cube(), twisted_cell(0.07)] {
                let ints = ElementIntegrals::compute(&e, &hex);
                let n = ints.nodes_per_element();
                for d in 0..3 {
                    let mut surface = DenseMatrix::zeros(n, n);
                    for f in &ints.faces {
                        for (a, &ia) in f.node_indices.iter().enumerate() {
                            for (b, &ib) in f.node_indices.iter().enumerate() {
                                surface[(ia, ib)] += f.matrices[d][(a, b)];
                            }
                        }
                    }
                    for i in 0..n {
                        for j in 0..n {
                            let lhs = ints.stream[d][(i, j)] + ints.stream[d][(j, i)];
                            assert!(
                                (lhs - surface[(i, j)]).abs() < 1e-9,
                                "order {order}, d {d}, ({i},{j}): {lhs} vs {}",
                                surface[(i, j)]
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn face_areas_and_normals_for_unit_cube() {
        let e = ReferenceElement::new(1);
        let ints = ElementIntegrals::compute(&e, &HexVertices::unit_cube());
        for &face in &FACES {
            let fi = ints.face(face);
            assert!((fi.area - 1.0).abs() < 1e-12);
            let expected = face.reference_normal();
            for d in 0..3 {
                assert!((fi.average_normal[d] - expected[d]).abs() < 1e-12);
            }
            // Face mass matrix entries (dotted with the normal) sum to the
            // face area.
            let m = fi.directed(expected);
            let sum: f64 = m.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn directed_face_matrix_classifies_inflow_outflow() {
        let e = ReferenceElement::new(1);
        let ints = ElementIntegrals::compute(&e, &HexVertices::unit_cube());
        let omega = [0.6, 0.5, 0.62];
        let mut inflow = 0;
        let mut outflow = 0;
        for &face in &FACES {
            let dn = ints.face(face).direction_dot_normal(omega);
            if dn > 0.0 {
                outflow += 1;
            } else {
                inflow += 1;
            }
        }
        assert_eq!(inflow, 3);
        assert_eq!(outflow, 3);
    }

    #[test]
    fn footprint_is_positive_and_grows_with_order() {
        let e1 = ElementIntegrals::compute(&ReferenceElement::new(1), &HexVertices::unit_cube());
        let e2 = ElementIntegrals::compute(&ReferenceElement::new(2), &HexVertices::unit_cube());
        assert!(e1.footprint_bytes() > 0);
        assert!(e2.footprint_bytes() > e1.footprint_bytes());
    }

    #[test]
    fn twist_preserves_total_mass_approximately() {
        // The UnSNAP twist (≤ 0.001 rad) barely changes cell volumes.
        let e = ReferenceElement::new(1);
        let straight = ElementIntegrals::compute(&e, &HexVertices::unit_cube());
        let twisted = ElementIntegrals::compute(&e, &twisted_cell(0.001));
        assert!((straight.volume - twisted.volume).abs() < 1e-5);
    }

    #[test]
    fn face_node_index_lists_match_element_layout() {
        let e = ReferenceElement::new(2);
        let ints = ElementIntegrals::compute(&e, &HexVertices::unit_cube());
        for &face in &FACES {
            let fi = ints.face(face);
            assert_eq!(fi.node_indices.len(), ints.nodes_per_face());
            assert_eq!(fi.node_indices, face_node_indices(face, 2));
        }
    }
}
