//! Gauss–Legendre quadrature in 1-D and tensor-product rules on the
//! reference hexahedron `[-1, 1]³` and its faces.
//!
//! The DG weak form integrates products of degree-`p` Lagrange polynomials
//! (and, through the trilinear geometry map, a mildly varying Jacobian), so
//! an `(p + 1)`-point Gauss rule per direction integrates the mass and
//! streaming matrices of an *affine* element exactly and is the default
//! choice used by [`crate::element::ReferenceElement`].

use serde::{Deserialize, Serialize};

/// A 1-D quadrature rule on `[-1, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuadratureRule {
    /// Quadrature point abscissae in `[-1, 1]`.
    pub points: Vec<f64>,
    /// Quadrature weights (sum to 2, the length of the interval).
    pub weights: Vec<f64>,
}

impl QuadratureRule {
    /// Number of points in the rule.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the rule has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Integrate a 1-D function over `[-1, 1]`.
    pub fn integrate<F: Fn(f64) -> f64>(&self, f: F) -> f64 {
        self.points
            .iter()
            .zip(self.weights.iter())
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

/// Evaluate the Legendre polynomial `P_n` and its derivative at `x`
/// using the three-term recurrence.
fn legendre_with_derivative(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let mut p_prev = 1.0; // P_0
    let mut p = x; // P_1
    for k in 2..=n {
        let kf = k as f64;
        let p_next = ((2.0 * kf - 1.0) * x * p - (kf - 1.0) * p_prev) / kf;
        p_prev = p;
        p = p_next;
    }
    // Derivative from the standard identity (valid away from |x| = 1; the
    // Gauss nodes are strictly interior so this is safe).
    let dp = n as f64 * (x * p - p_prev) / (x * x - 1.0);
    (p, dp)
}

/// Construct the `n`-point Gauss–Legendre rule on `[-1, 1]`.
///
/// Nodes are found by Newton iteration started from the Chebyshev guess;
/// the rule integrates polynomials up to degree `2n − 1` exactly.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gauss_legendre(n: usize) -> QuadratureRule {
    assert!(n > 0, "a quadrature rule needs at least one point");
    let mut points = vec![0.0; n];
    let mut weights = vec![0.0; n];

    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev initial guess for the i-th root (descending order).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        for _ in 0..100 {
            let (p, d) = legendre_with_derivative(n, x);
            let dx = p / d;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let (_, dp) = legendre_with_derivative(n, x);
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        // Roots come out in descending order from the Chebyshev guess;
        // store symmetric pairs so the final rule is ascending.
        points[i] = -x;
        points[n - 1 - i] = x;
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n % 2 == 1 {
        // The middle node of an odd rule is exactly zero.
        points[n / 2] = 0.0;
    }

    QuadratureRule { points, weights }
}

/// A quadrature point in the reference cube with its weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumePoint {
    /// Reference coordinates `(ξ, η, ζ)` in `[-1, 1]³`.
    pub xi: [f64; 3],
    /// Tensor-product weight.
    pub weight: f64,
}

/// Tensor-product Gauss rule over the reference hexahedron `[-1, 1]³`
/// with `n` points per direction (so `n³` points total).
pub fn hex_rule(n: usize) -> Vec<VolumePoint> {
    let rule = gauss_legendre(n);
    let mut out = Vec::with_capacity(n * n * n);
    for (k, (&zk, &wk)) in rule.points.iter().zip(rule.weights.iter()).enumerate() {
        let _ = k;
        for (&yj, &wj) in rule.points.iter().zip(rule.weights.iter()) {
            for (&xi, &wi) in rule.points.iter().zip(rule.weights.iter()) {
                out.push(VolumePoint {
                    xi: [xi, yj, zk],
                    weight: wi * wj * wk,
                });
            }
        }
    }
    out
}

/// A quadrature point on a face of the reference hexahedron.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FacePoint {
    /// Full 3-D reference coordinates of the point (one coordinate pinned
    /// to ±1 by the face).
    pub xi: [f64; 3],
    /// The two in-face parametric coordinates `(u, v)`.
    pub uv: [f64; 2],
    /// Tensor-product weight for the 2-D rule.
    pub weight: f64,
}

/// Tensor-product Gauss rule over one face of the reference hexahedron.
///
/// `axis` is the reference axis normal to the face (0 = ξ, 1 = η, 2 = ζ)
/// and `positive` selects the `+1` or `-1` face.  The in-face coordinates
/// `(u, v)` run over the other two axes in ascending axis order.
pub fn face_rule(n: usize, axis: usize, positive: bool) -> Vec<FacePoint> {
    assert!(axis < 3, "face axis must be 0, 1 or 2");
    let rule = gauss_legendre(n);
    let pinned = if positive { 1.0 } else { -1.0 };
    let (a, b) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let mut out = Vec::with_capacity(n * n);
    for (&v, &wv) in rule.points.iter().zip(rule.weights.iter()) {
        for (&u, &wu) in rule.points.iter().zip(rule.weights.iter()) {
            let mut xi = [0.0; 3];
            xi[axis] = pinned;
            xi[a] = u;
            xi[b] = v;
            out.push(FacePoint {
                xi,
                uv: [u, v],
                weight: wu * wv,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_interval_length() {
        for n in 1..=12 {
            let rule = gauss_legendre(n);
            let sum: f64 = rule.weights.iter().sum();
            assert!((sum - 2.0).abs() < 1e-13, "n = {n}: sum = {sum}");
        }
    }

    #[test]
    fn points_are_sorted_and_interior() {
        for n in 1..=10 {
            let rule = gauss_legendre(n);
            for w in rule.points.windows(2) {
                assert!(w[0] < w[1], "points not ascending for n = {n}");
            }
            assert!(rule.points.iter().all(|&x| x > -1.0 && x < 1.0));
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_degree_2n_minus_1() {
        // ∫_{-1}^{1} x^k dx = 0 (odd k) or 2/(k+1) (even k).
        for n in 1..=8 {
            let rule = gauss_legendre(n);
            for k in 0..(2 * n) {
                let exact = if k % 2 == 1 {
                    0.0
                } else {
                    2.0 / (k as f64 + 1.0)
                };
                let approx = rule.integrate(|x| x.powi(k as i32));
                assert!(
                    (approx - exact).abs() < 1e-12,
                    "n = {n}, degree {k}: {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn known_two_point_rule() {
        let rule = gauss_legendre(2);
        let expected = 1.0 / 3.0f64.sqrt();
        assert!((rule.points[0] + expected).abs() < 1e-14);
        assert!((rule.points[1] - expected).abs() < 1e-14);
        assert!((rule.weights[0] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn known_three_point_rule() {
        let rule = gauss_legendre(3);
        assert!(rule.points[1].abs() < 1e-15);
        assert!((rule.weights[1] - 8.0 / 9.0).abs() < 1e-13);
        assert!((rule.weights[0] - 5.0 / 9.0).abs() < 1e-13);
    }

    #[test]
    #[should_panic]
    fn zero_points_panics() {
        let _ = gauss_legendre(0);
    }

    #[test]
    fn hex_rule_integrates_volume_and_polynomials() {
        let pts = hex_rule(3);
        assert_eq!(pts.len(), 27);
        let volume: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((volume - 8.0).abs() < 1e-12);
        // ∫ x² y² z² over the cube = (2/3)³
        let integral: f64 = pts
            .iter()
            .map(|p| p.weight * p.xi[0].powi(2) * p.xi[1].powi(2) * p.xi[2].powi(2))
            .sum();
        assert!((integral - (2.0f64 / 3.0).powi(3)).abs() < 1e-12);
    }

    #[test]
    fn face_rule_integrates_area() {
        for axis in 0..3 {
            for positive in [false, true] {
                let pts = face_rule(2, axis, positive);
                assert_eq!(pts.len(), 4);
                let area: f64 = pts.iter().map(|p| p.weight).sum();
                assert!((area - 4.0).abs() < 1e-12);
                for p in &pts {
                    let pinned = if positive { 1.0 } else { -1.0 };
                    assert_eq!(p.xi[axis], pinned);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn face_rule_bad_axis_panics() {
        let _ = face_rule(2, 3, true);
    }

    #[test]
    fn integrate_helper() {
        let rule = gauss_legendre(8);
        let val = rule.integrate(|x| x.cos());
        assert!((val - 2.0 * 1.0f64.sin()).abs() < 1e-12);
    }
}
