//! # unsnap-obs
//!
//! The observability substrate of the UnSNAP workspace: the
//! dependency-free primitives every other crate builds its telemetry on.
//! Nothing in here knows about transport physics — the crate sits at the
//! bottom of the dependency graph so the solver crates (`unsnap-core`,
//! `unsnap-comm`) and the bench harness can all share one vocabulary for
//! time, metrics and machine-readable output.
//!
//! ## Module map
//!
//! * [`clock`] — the pluggable [`Clock`] trait with a monotonic
//!   [`SystemClock`] for production and a [`MockClock`] tests drive by
//!   hand (or step automatically) to pin timer outputs exactly.
//! * [`metrics`] — fixed-bucket [`Histogram`]s with percentile queries
//!   and a [`MetricsRegistry`] of counters, gauges and histograms, each
//!   tagged with its [`Determinism`] class: *deterministic* values must
//!   be bit-for-bit identical at every thread/rank count, *wall-clock*
//!   values are excluded from those comparisons.
//! * [`json`] — the minimal hand-rolled JSON writer (the vendored
//!   `serde` is a no-op stand-in) previously hosted by `unsnap-core`.
//! * [`reader`] — a small recursive-descent JSON parser producing
//!   [`JsonValue`] trees, so tooling (the `trajectory` bin, CI schema
//!   checks, round-trip tests) can consume what the writer emits.
//! * [`jsonl`] — line-oriented JSON: a [`JsonlWriter`] for streaming
//!   run logs and reader helpers that parse a file back into values.
//! * [`stream`] — [`LineChannel`]: an in-memory, multi-consumer line
//!   stream with blocking tails, the live-event transport behind
//!   `unsnap-serve`'s chunked JSONL endpoint.
//! * [`trace`] — hierarchical spans: a [`Tracer`] building a
//!   determinism-split [`TraceTree`] (structure deterministic,
//!   timestamps wall-clock) with Chrome `trace_event` and
//!   collapsed-stack flamegraph exporters.
//!
//! ## The determinism contract
//!
//! Everything this crate measures falls in one of two classes:
//!
//! | class | examples | guarantee |
//! |-------|----------|-----------|
//! | deterministic | sweep counts, cells swept, iteration counts, halo bytes | bit-for-bit identical at every thread and rank count |
//! | wall-clock | phase seconds, per-sweep latency | real time; excluded from determinism comparisons, pinned in tests via [`MockClock`] |
//!
//! The split is structural, not advisory: deterministic values come from
//! event *counts* and *payload sizes*, wall-clock values only ever from a
//! [`Clock`], so injecting a mock makes the second class exactly
//! reproducible too.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod reader;
pub mod stream;
pub mod trace;

pub use clock::{Clock, MockClock, SystemClock};
pub use jsonl::JsonlWriter;
pub use metrics::{Determinism, Histogram, MetricsRegistry};
pub use reader::JsonValue;
pub use stream::{ChannelWriter, LineChannel};
pub use trace::{SpanRecord, TraceTree, Tracer};
