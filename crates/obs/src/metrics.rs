//! Fixed-bucket histograms and the tagged metrics registry.
//!
//! Two rules make these metrics trustworthy:
//!
//! 1. every metric carries a [`Determinism`] tag — *deterministic*
//!    metrics (event counts, payload sizes) must be bit-for-bit
//!    identical at every thread and rank count, *wall-clock* metrics
//!    (anything derived from a [`Clock`](crate::clock::Clock) reading)
//!    are excluded from those comparisons and pinned separately with a
//!    mock clock;
//! 2. histograms use **fixed** bucket bounds chosen at construction, so
//!    two histograms of the same stream are comparable bucket-by-bucket
//!    and the quantile query needs no stored samples.
//!
//! ```
//! use unsnap_obs::metrics::Histogram;
//!
//! let mut h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
//! for v in [2.0, 3.0, 50.0] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 3);
//! assert_eq!(h.quantile(0.5), Some(10.0)); // upper bound of the median bucket
//! ```

use std::collections::BTreeMap;

use crate::json::{self, JsonObject};

/// The determinism class of a metric — the heart of the observability
/// contract (see the [crate docs](crate)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Determinism {
    /// Bit-for-bit identical at every thread and rank count; enforced by
    /// the determinism suites.
    Deterministic,
    /// Derived from a clock reading; legitimately differs between runs
    /// and is pinned in tests only via a mock clock.
    WallClock,
}

impl Determinism {
    /// The JSON/section label for this class.
    pub fn label(self) -> &'static str {
        match self {
            Determinism::Deterministic => "deterministic",
            Determinism::WallClock => "wallclock",
        }
    }
}

/// A fixed-bucket histogram with exact count/sum/min/max sidecars.
///
/// Bucket `i` counts samples `v <= bounds[i]` (first matching bucket
/// wins); one implicit overflow bucket counts everything above the last
/// bound.  Quantiles report the upper bound of the bucket in which the
/// requested rank falls, clamped into `[min, max]` so degenerate streams
/// (all samples equal) report that exact value.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds (plus the
    /// implicit overflow bucket).
    pub fn with_bounds(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The standard latency scale: powers of two from 1 µs to ~134 s.
    /// Wide enough for a single DG sweep on any mesh this mini-app runs,
    /// fine enough that p50/p95 are meaningful after clamping.
    pub fn latency_seconds() -> Self {
        let bounds: Vec<f64> = (0..28).map(|k| 1e-6 * f64::from(1u32 << k)).collect();
        Self::with_bounds(&bounds)
    }

    /// A small linear scale for bounded integer-ish streams (counts per
    /// event): upper bounds `scale, 2·scale, …, buckets·scale`.
    pub fn linear(scale: f64, buckets: usize) -> Self {
        let bounds: Vec<f64> = (1..=buckets).map(|k| scale * k as f64).collect();
        Self::with_bounds(&bounds)
    }

    /// Rebuild a histogram from its serialised parts (the fields
    /// [`Histogram::to_json`] emits), for consumers that receive a
    /// histogram across the wire — e.g. the load generator rebuilding a
    /// solve's sweep-latency distribution from an outcome document —
    /// and want its quantiles back rather than an empty stand-in.
    ///
    /// `bucket_counts` must have one more entry than `bounds` (the
    /// implicit overflow bucket) and sum to `count`; `min`/`max` are
    /// ignored while `count` is zero.  Returns `None` when the parts are
    /// inconsistent, so a torn document degrades to "no histogram"
    /// instead of fabricating quantiles.
    pub fn from_parts(
        bounds: &[f64],
        bucket_counts: &[u64],
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Option<Self> {
        if bucket_counts.len() != bounds.len() + 1 {
            return None;
        }
        if !bounds.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        if bucket_counts.iter().sum::<u64>() != count {
            return None;
        }
        if count > 0 && (min > max || min.is_nan() || max.is_nan()) {
            return None;
        }
        Some(Self {
            bounds: bounds.to_vec(),
            counts: bucket_counts.to_vec(),
            count,
            sum,
            min: if count > 0 { min } else { f64::INFINITY },
            max: if count > 0 { max } else { f64::NEG_INFINITY },
        })
    }

    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The bucket upper bounds (without the implicit overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket sample counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The upper bound of the bucket holding the `p`-quantile sample
    /// (`0.0 < p <= 1.0`), clamped into `[min, max]`; `None` while empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (slot, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                let bound = if slot < self.bounds.len() {
                    self.bounds[slot]
                } else {
                    self.max
                };
                return Some(bound.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Serialise as a JSON object (bounds, bucket counts, sidecars and
    /// the p50/p95 quantiles tooling wants most).
    pub fn to_json(&self) -> String {
        let counts: Vec<usize> = self.counts.iter().map(|&c| c as usize).collect();
        JsonObject::new()
            .field_u64("count", self.count)
            .field_f64("sum", self.sum)
            .field_f64("min", self.min().unwrap_or(0.0))
            .field_f64("max", self.max().unwrap_or(0.0))
            .field_f64("p50", self.quantile(0.5).unwrap_or(0.0))
            .field_f64("p95", self.quantile(0.95).unwrap_or(0.0))
            .field_f64_array("bounds", &self.bounds)
            .field_usize_array("bucket_counts", &counts)
            .finish()
    }
}

/// A named collection of counters, gauges and histograms, each tagged
/// with its [`Determinism`] class.
///
/// Iteration order is the `BTreeMap` key order, so serialisation is
/// deterministic; [`MetricsRegistry::deterministic_only`] projects out
/// exactly the subset the cross-thread/rank determinism suites may
/// compare.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, (Determinism, u64)>,
    gauges: BTreeMap<String, (Determinism, f64)>,
    histograms: BTreeMap<String, (Determinism, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter, creating it at zero on first touch.
    pub fn counter_add(&mut self, name: &str, class: Determinism, delta: u64) {
        let entry = self.counters.entry(name.to_string()).or_insert((class, 0));
        debug_assert_eq!(entry.0, class, "counter {name} re-tagged");
        entry.1 += delta;
    }

    /// Set a gauge to `value`, creating it on first touch.
    pub fn gauge_set(&mut self, name: &str, class: Determinism, value: f64) {
        self.gauges.insert(name.to_string(), (class, value));
    }

    /// Insert (or replace) a histogram wholesale.
    pub fn histogram_insert(&mut self, name: &str, class: Determinism, histogram: Histogram) {
        self.histograms.insert(name.to_string(), (class, histogram));
    }

    /// Record a sample into a histogram created on first touch by
    /// `make` (e.g. `Histogram::latency_seconds`).
    pub fn histogram_record(
        &mut self,
        name: &str,
        class: Determinism,
        make: impl FnOnce() -> Histogram,
        value: f64,
    ) {
        let entry = self
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| (class, make()));
        debug_assert_eq!(entry.0, class, "histogram {name} re-tagged");
        entry.1.record(value);
    }

    /// A counter's value (`None` if never touched).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(|&(_, v)| v)
    }

    /// A gauge's value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).map(|&(_, v)| v)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name).map(|(_, h)| h)
    }

    /// The registry restricted to its deterministic entries — the
    /// projection determinism suites compare across thread/rank counts.
    pub fn deterministic_only(&self) -> Self {
        Self {
            counters: self
                .counters
                .iter()
                .filter(|(_, (c, _))| *c == Determinism::Deterministic)
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(_, (c, _))| *c == Determinism::Deterministic)
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(_, (c, _))| *c == Determinism::Deterministic)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Serialise in the Prometheus text exposition format (version
    /// 0.0.4): every counter, gauge and histogram in the registry, in
    /// deterministic (sorted) order.
    ///
    /// Registry names are sanitised to the Prometheus grammar (dots and
    /// other punctuation become `_`), and every sample carries its
    /// [`Determinism`] class as a `class` label so scrape consumers can
    /// apply the same deterministic/wall-clock split the JSON form
    /// exposes structurally.  Histograms expose the standard cumulative
    /// `_bucket{le="..."}` series (including `+Inf`) plus `_sum` and
    /// `_count`.
    pub fn to_prometheus(&self) -> String {
        fn sanitise(name: &str) -> String {
            let mut out = String::with_capacity(name.len());
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                    if i == 0 && c.is_ascii_digit() {
                        out.push('_');
                    }
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        fn render(v: f64) -> String {
            if v.is_nan() {
                "NaN".to_string()
            } else if v == f64::INFINITY {
                "+Inf".to_string()
            } else if v == f64::NEG_INFINITY {
                "-Inf".to_string()
            } else {
                format!("{v}")
            }
        }
        let mut out = String::new();
        for (name, (class, value)) in &self.counters {
            let name = sanitise(name);
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name}{{class=\"{}\"}} {value}\n", class.label()));
        }
        for (name, (class, value)) in &self.gauges {
            let name = sanitise(name);
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!(
                "{name}{{class=\"{}\"}} {}\n",
                class.label(),
                render(*value)
            ));
        }
        for (name, (class, histogram)) in &self.histograms {
            let name = sanitise(name);
            let class = class.label();
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in histogram
                .bounds()
                .iter()
                .zip(histogram.bucket_counts().iter())
            {
                cumulative += count;
                out.push_str(&format!(
                    "{name}_bucket{{class=\"{class}\",le=\"{}\"}} {cumulative}\n",
                    render(*bound)
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{class=\"{class}\",le=\"+Inf\"}} {}\n",
                histogram.count()
            ));
            out.push_str(&format!(
                "{name}_sum{{class=\"{class}\"}} {}\n",
                render(histogram.sum())
            ));
            out.push_str(&format!(
                "{name}_count{{class=\"{class}\"}} {}\n",
                histogram.count()
            ));
        }
        out
    }

    /// Serialise as `{"deterministic": {...}, "wallclock": {...}}`, each
    /// class holding its `counters`/`gauges`/`histograms` objects.
    pub fn to_json(&self) -> String {
        let mut root = JsonObject::new();
        for class in [Determinism::Deterministic, Determinism::WallClock] {
            let mut counters = JsonObject::new();
            for (name, (c, v)) in &self.counters {
                if *c == class {
                    counters = counters.field_u64(name, *v);
                }
            }
            let mut gauges = JsonObject::new();
            for (name, (c, v)) in &self.gauges {
                if *c == class {
                    gauges = gauges.field_f64(name, *v);
                }
            }
            let mut histograms = JsonObject::new();
            for (name, (c, h)) in &self.histograms {
                if *c == class {
                    histograms = histograms.field_raw(name, &h.to_json());
                }
            }
            let section = JsonObject::new()
                .field_raw("counters", &counters.finish())
                .field_raw("gauges", &gauges.finish())
                .field_raw("histograms", &histograms.finish())
                .finish();
            root = root.field_raw(class.label(), &section);
        }
        root.finish()
    }
}

/// Convenience: serialise a `[(label, value)]` breakdown as a JSON
/// object in the given order.
pub fn breakdown_json(entries: &[(&str, f64)]) -> String {
    let mut obj = JsonObject::new();
    for (label, value) in entries {
        obj = obj.field_raw(label, &json::number(*value));
    }
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_sidecars() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0]);
        for v in [0.5, 1.5, 1.5, 5.0] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), &[1, 2, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 8.5);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(5.0));
    }

    #[test]
    fn quantiles_report_clamped_bucket_bounds() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        // The p100 sample sits in the (2,4] bucket whose bound exceeds
        // the true max: clamped to the max.
        assert_eq!(h.quantile(1.0), Some(3.0));
        assert_eq!(Histogram::latency_seconds().quantile(0.5), None);
    }

    #[test]
    fn degenerate_stream_quantiles_are_exact() {
        let mut h = Histogram::latency_seconds();
        for _ in 0..10 {
            h.record(0.003);
        }
        assert_eq!(h.quantile(0.5), Some(0.003));
        assert_eq!(h.quantile(0.95), Some(0.003));
    }

    #[test]
    fn overflow_samples_land_in_the_implicit_bucket() {
        let mut h = Histogram::linear(1.0, 2);
        h.record(10.0);
        assert_eq!(h.bucket_counts(), &[0, 0, 1]);
        assert_eq!(h.quantile(0.5), Some(10.0));
    }

    #[test]
    fn from_parts_round_trips_a_recorded_histogram() {
        let mut h = Histogram::latency_seconds();
        for v in [0.002, 0.003, 0.003, 0.25] {
            h.record(v);
        }
        let rebuilt = Histogram::from_parts(
            h.bounds(),
            h.bucket_counts(),
            h.count(),
            h.sum(),
            h.min().unwrap(),
            h.max().unwrap(),
        )
        .expect("self-consistent parts must rebuild");
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.quantile(0.5), h.quantile(0.5));

        // Empty histograms round-trip too (min/max sidecars ignored).
        let empty = Histogram::latency_seconds();
        let rebuilt =
            Histogram::from_parts(empty.bounds(), empty.bucket_counts(), 0, 0.0, 0.0, 0.0).unwrap();
        assert_eq!(rebuilt.quantile(0.5), None);

        // Inconsistent parts are rejected, not patched up.
        assert!(Histogram::from_parts(&[1.0, 2.0], &[1, 0], 1, 0.5, 0.5, 0.5).is_none());
        assert!(Histogram::from_parts(&[2.0, 1.0], &[0, 0, 0], 0, 0.0, 0.0, 0.0).is_none());
        assert!(Histogram::from_parts(&[1.0], &[1, 1], 3, 1.0, 0.5, 0.5).is_none());
        assert!(Histogram::from_parts(&[1.0], &[1, 1], 2, 1.0, 2.0, 0.5).is_none());
    }

    #[test]
    fn registry_tags_and_projects_classes() {
        let mut r = MetricsRegistry::new();
        r.counter_add("sweeps", Determinism::Deterministic, 3);
        r.counter_add("sweeps", Determinism::Deterministic, 2);
        r.gauge_set("seconds", Determinism::WallClock, 1.25);
        r.histogram_record(
            "latency",
            Determinism::WallClock,
            Histogram::latency_seconds,
            0.01,
        );
        assert_eq!(r.counter("sweeps"), Some(5));
        assert_eq!(r.gauge("seconds"), Some(1.25));
        assert_eq!(r.histogram("latency").unwrap().count(), 1);

        let det = r.deterministic_only();
        assert_eq!(det.counter("sweeps"), Some(5));
        assert_eq!(det.gauge("seconds"), None);
        assert!(det.histogram("latency").is_none());
    }

    #[test]
    fn registry_json_splits_classes() {
        let mut r = MetricsRegistry::new();
        r.counter_add("sweeps", Determinism::Deterministic, 5);
        r.gauge_set("seconds", Determinism::WallClock, 0.5);
        let json = r.to_json();
        assert!(json.starts_with(r#"{"deterministic":"#));
        assert!(json.contains(r#""sweeps":5"#));
        assert!(json.contains(r#""wallclock":"#));
        assert!(json.contains(r#""seconds":0.5"#));
    }

    #[test]
    fn prometheus_exposition_covers_every_instrument() {
        let mut r = MetricsRegistry::new();
        r.counter_add("phase_starts.sweep", Determinism::Deterministic, 7);
        r.gauge_set("serve_jobs_queued", Determinism::Deterministic, 2.0);
        let mut h = Histogram::with_bounds(&[1.0, 2.0]);
        for v in [0.5, 1.5, 1.5, 5.0] {
            h.record(v);
        }
        r.histogram_insert("queue_wait_seconds", Determinism::WallClock, h);

        let text = r.to_prometheus();
        // Dotted names are sanitised, classes ride as labels.
        assert!(text.contains("# TYPE phase_starts_sweep counter\n"));
        assert!(text.contains("phase_starts_sweep{class=\"deterministic\"} 7\n"));
        assert!(text.contains("# TYPE serve_jobs_queued gauge\n"));
        assert!(text.contains("serve_jobs_queued{class=\"deterministic\"} 2\n"));
        // Histogram buckets are cumulative and end at +Inf == count.
        assert!(text.contains("# TYPE queue_wait_seconds histogram\n"));
        assert!(text.contains("queue_wait_seconds_bucket{class=\"wallclock\",le=\"1\"} 1\n"));
        assert!(text.contains("queue_wait_seconds_bucket{class=\"wallclock\",le=\"2\"} 3\n"));
        assert!(text.contains("queue_wait_seconds_bucket{class=\"wallclock\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("queue_wait_seconds_sum{class=\"wallclock\"} 8.5\n"));
        assert!(text.contains("queue_wait_seconds_count{class=\"wallclock\"} 4\n"));
        // Every line is a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.contains("} "),
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn breakdown_serialises_in_order() {
        assert_eq!(
            breakdown_json(&[("sweep", 1.5), ("krylov", 0.25)]),
            r#"{"sweep":1.5,"krylov":0.25}"#
        );
    }
}
