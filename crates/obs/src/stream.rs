//! An in-memory, multi-consumer line stream for live telemetry.
//!
//! `unsnap-serve` streams a running solve's JSONL events to HTTP clients
//! while the solve is still producing them.  The vendored crossbeam
//! stand-in only offers a non-blocking `try_recv`, so this module builds
//! the one primitive the server actually needs directly on
//! `std::sync::{Mutex, Condvar}`: a [`LineChannel`] that
//!
//! * accepts lines from one producer (via [`LineChannel::push`] or the
//!   [`std::io::Write`] adapter [`ChannelWriter`], which a
//!   `JsonlWriter` can sit on top of),
//! * retains every line, so a consumer attaching mid-run replays the
//!   full history before tailing (each job's event log is bounded by
//!   its iteration counts, so retention is the right trade here), and
//! * lets any number of consumers block with a timeout for lines past
//!   an offset ([`LineChannel::wait_at`]) — the shape an HTTP chunked
//!   responder needs: "give me everything after line `i`, or tell me
//!   the stream closed".
//!
//! Clones share the buffer; closing is idempotent and wakes every
//! waiter.
//!
//! ```
//! use unsnap_obs::stream::LineChannel;
//! use std::time::Duration;
//!
//! let channel = LineChannel::new();
//! channel.push("first");
//! let (lines, closed) = channel.wait_at(0, Duration::from_millis(1));
//! assert_eq!(lines, vec!["first".to_string()]);
//! assert!(!closed);
//! channel.close();
//! let (rest, closed) = channel.wait_at(1, Duration::from_millis(1));
//! assert!(rest.is_empty());
//! assert!(closed);
//! ```

use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[derive(Debug, Default)]
struct StreamState {
    lines: Vec<String>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Shared {
    state: Mutex<StreamState>,
    cv: Condvar,
}

/// A shared, append-only line stream (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct LineChannel {
    shared: Arc<Shared>,
}

impl LineChannel {
    /// A fresh, open, empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one line and wake every waiter.  Pushing to a closed
    /// channel is a silent no-op (the producer lost the race against a
    /// cancel; dropping the tail is the intended outcome).
    pub fn push(&self, line: impl Into<String>) {
        let mut state = self.shared.state.lock().unwrap();
        if state.closed {
            return;
        }
        state.lines.push(line.into());
        drop(state);
        self.shared.cv.notify_all();
    }

    /// Close the stream: no further lines, every current and future
    /// waiter unblocks.  Idempotent.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.shared.cv.notify_all();
    }

    /// Whether the stream has been closed.
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().unwrap().closed
    }

    /// Lines accepted so far.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().lines.len()
    }

    /// `true` when no line has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every line accepted so far.
    pub fn snapshot(&self) -> Vec<String> {
        self.shared.state.lock().unwrap().lines.clone()
    }

    /// Block (up to `timeout`) until a line past index `from` exists or
    /// the stream closes; returns the lines from `from` onward (possibly
    /// empty on timeout) and whether the stream is closed.  The consumer
    /// loop is `from += returned.len()` until `closed`.
    pub fn wait_at(&self, from: usize, timeout: Duration) -> (Vec<String>, bool) {
        let state = self.shared.state.lock().unwrap();
        let (state, _timed_out) = self
            .shared
            .cv
            .wait_timeout_while(state, timeout, |s| s.lines.len() <= from && !s.closed)
            .unwrap();
        let lines = state.lines.get(from..).unwrap_or_default().to_vec();
        (lines, state.closed)
    }

    /// A [`std::io::Write`] adapter feeding this channel, one line per
    /// `\n`-terminated chunk — the glue that lets a `JsonlWriter` (or
    /// any line-oriented writer) stream straight into the channel.
    pub fn writer(&self) -> ChannelWriter {
        ChannelWriter {
            channel: self.clone(),
            buf: Vec::new(),
        }
    }
}

/// The [`std::io::Write`] adapter returned by [`LineChannel::writer`].
///
/// Bytes buffer until a `\n`, then the completed line (without the
/// terminator, lossily UTF-8-decoded) is pushed.  Dropping the writer
/// flushes an unterminated tail as a final line; it does **not** close
/// the channel — lifecycle stays with the owner, so a solve's writer
/// can be dropped while the server keeps the stream open for its own
/// status epilogue.
#[derive(Debug)]
pub struct ChannelWriter {
    channel: LineChannel,
    buf: Vec<u8>,
}

impl ChannelWriter {
    /// The channel this writer feeds.
    pub fn channel(&self) -> &LineChannel {
        &self.channel
    }
}

impl io::Write for ChannelWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &byte in buf {
            if byte == b'\n' {
                let line = String::from_utf8_lossy(&self.buf).into_owned();
                self.channel.push(line);
                self.buf.clear();
            } else {
                self.buf.push(byte);
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for ChannelWriter {
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            let line = String::from_utf8_lossy(&self.buf).into_owned();
            self.channel.push(line);
            self.buf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn push_snapshot_and_len() {
        let channel = LineChannel::new();
        assert!(channel.is_empty());
        channel.push("a");
        channel.push("b".to_string());
        assert_eq!(channel.len(), 2);
        assert_eq!(channel.snapshot(), vec!["a".to_string(), "b".to_string()]);
        assert!(!channel.is_closed());
    }

    #[test]
    fn wait_at_returns_immediately_when_lines_exist() {
        let channel = LineChannel::new();
        channel.push("x");
        channel.push("y");
        let (lines, closed) = channel.wait_at(1, Duration::from_secs(5));
        assert_eq!(lines, vec!["y".to_string()]);
        assert!(!closed);
    }

    #[test]
    fn wait_at_times_out_empty_on_a_quiet_stream() {
        let channel = LineChannel::new();
        let (lines, closed) = channel.wait_at(0, Duration::from_millis(10));
        assert!(lines.is_empty());
        assert!(!closed);
    }

    #[test]
    fn close_wakes_waiters_and_stops_pushes() {
        let channel = LineChannel::new();
        let waiter = {
            let channel = channel.clone();
            std::thread::spawn(move || channel.wait_at(0, Duration::from_secs(30)))
        };
        channel.close();
        let (lines, closed) = waiter.join().expect("waiter");
        assert!(lines.is_empty());
        assert!(closed);
        channel.push("too late");
        assert!(channel.is_empty());
        channel.close(); // idempotent
    }

    #[test]
    fn producer_and_consumer_stream_across_threads() {
        let channel = LineChannel::new();
        let producer = {
            let channel = channel.clone();
            std::thread::spawn(move || {
                for i in 0..5 {
                    channel.push(format!("line {i}"));
                }
                channel.close();
            })
        };
        let mut seen = Vec::new();
        loop {
            let (lines, closed) = channel.wait_at(seen.len(), Duration::from_secs(30));
            seen.extend(lines);
            if closed && seen.len() == channel.len() {
                break;
            }
        }
        producer.join().expect("producer");
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[4], "line 4");
    }

    #[test]
    fn writer_splits_on_newlines_and_flushes_tail_on_drop() {
        let channel = LineChannel::new();
        {
            let mut writer = channel.writer();
            writer.write_all(b"one\ntw").unwrap();
            writer.write_all(b"o\ntail").unwrap();
            writer.flush().unwrap();
            assert_eq!(writer.channel().len(), 2);
        }
        // Drop flushed the unterminated tail but left the channel open.
        assert_eq!(
            channel.snapshot(),
            vec!["one".to_string(), "two".to_string(), "tail".to_string()]
        );
        assert!(!channel.is_closed());
    }
}
