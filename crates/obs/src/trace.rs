//! Hierarchical tracing: a determinism-split span tree with exportable
//! profiles.
//!
//! A [`Tracer`] records nested spans into per-lane stacks (lane 0 is the
//! driver thread; distributed drivers give each rank its own lane) and a
//! bounded ring buffer of completed records.  The PR 6 observability
//! split applies *structurally*:
//!
//! * span **structure** — ids, parent links, lane assignment, nesting
//!   depth, names and detail strings — is [`Deterministic`]: it derives
//!   only from the (replayed, rank-ordered) event stream, so it is
//!   bit-for-bit identical at every thread and rank count;
//! * span **timestamps** are [`WallClock`]: they come from the tracer's
//!   own arrival-time [`Clock`] and must be stripped with
//!   [`TraceTree::zero_wallclock`] (or compared through the structural
//!   [`PartialEq`]) before any cross-run comparison.
//!
//! Timestamps are issued strictly increasing (`ts = max(now, last + 1)`
//! in microseconds), so exported events are monotonically ordered and —
//! together with the per-lane stack discipline — strictly nested.
//!
//! Two exporters turn a finished [`TraceTree`] into standard profile
//! formats: [`TraceTree::to_chrome_json`] emits Chrome `trace_event`
//! JSON loadable in Perfetto / `chrome://tracing`, and
//! [`TraceTree::to_collapsed`] emits collapsed-stack flamegraph text
//! (`lane;frame;frame value` lines).
//!
//! ```
//! use unsnap_obs::trace::Tracer;
//!
//! let mut tracer = Tracer::new();
//! tracer.open(0, "outer", "outer=0");
//! tracer.open(0, "sweep", "");
//! tracer.close(0);
//! tracer.close(0);
//! let tree = tracer.finish();
//! assert_eq!(tree.spans.len(), 2);
//! assert_eq!(tree.spans[1].parent, Some(0));
//! assert!(tree.to_chrome_json().contains("\"traceEvents\""));
//! ```
//!
//! [`Deterministic`]: crate::metrics::Determinism::Deterministic
//! [`WallClock`]: crate::metrics::Determinism::WallClock

use std::collections::{BTreeMap, VecDeque};

use crate::clock::{Clock, SystemClock};
use crate::json::{array_raw, JsonObject};

/// Default ring-buffer bound: plenty for any bench-sized solve while
/// keeping a runaway trace at tens of megabytes, not unbounded.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// One recorded span.
///
/// `id`, `parent`, `lane`, `depth`, `name` and `detail` are
/// deterministic; `start_us`/`end_us` are wall-clock microseconds from
/// the tracer's own clock.  Equality on the record compares every field
/// (timestamps included); the containing [`TraceTree`]'s `PartialEq` is
/// the structural one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Sequential id in open order (deterministic).
    pub id: u64,
    /// The enclosing span on the same lane, if any.
    pub parent: Option<u64>,
    /// The lane (Chrome `tid`): 0 = driver, rank `r` = lane `r + 1`.
    pub lane: usize,
    /// Nesting depth within the lane (0 = lane root).
    pub depth: usize,
    /// Span name (e.g. a phase label).
    pub name: String,
    /// Deterministic payload, e.g. `"angle=3 bucket=2 tasks=17"`; empty
    /// when there is none.
    pub detail: String,
    /// Open timestamp in microseconds (wall-clock).
    pub start_us: u64,
    /// Close timestamp in microseconds (wall-clock, `>= start_us`).
    pub end_us: u64,
}

impl SpanRecord {
    /// Whether two records agree on every deterministic field
    /// (timestamps excluded).
    pub fn same_structure(&self, other: &SpanRecord) -> bool {
        self.id == other.id
            && self.parent == other.parent
            && self.lane == other.lane
            && self.depth == other.depth
            && self.name == other.name
            && self.detail == other.detail
    }

    /// The span's duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A finished span tree: the records in open (id) order plus the count
/// of spans the ring buffer evicted.
///
/// `PartialEq` compares **structure only** — ids, parents, lanes,
/// depths, names, details and the dropped count — so two trees of the
/// same solve at different thread counts (or a fresh run versus a
/// checkpoint-resumed one) compare equal even though their wall-clock
/// timestamps differ.  Use [`TraceTree::zero_wallclock`] when a
/// bitwise comparison of the full records is wanted instead.
#[derive(Debug, Clone, Default)]
pub struct TraceTree {
    /// The retained spans, in open order (ids are contiguous).
    pub spans: Vec<SpanRecord>,
    /// Spans evicted by the ring buffer (oldest first).
    pub dropped: u64,
}

impl PartialEq for TraceTree {
    fn eq(&self, other: &Self) -> bool {
        self.dropped == other.dropped
            && self.spans.len() == other.spans.len()
            && self
                .spans
                .iter()
                .zip(&other.spans)
                .all(|(a, b)| a.same_structure(b))
    }
}

/// The lane label used in both exporters: `driver` for lane 0, `rankN`
/// for lane `N + 1`.
pub fn lane_label(lane: usize) -> String {
    if lane == 0 {
        "driver".to_string()
    } else {
        format!("rank{}", lane - 1)
    }
}

impl TraceTree {
    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the tree holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The span with the given id, if retained.
    pub fn span(&self, id: u64) -> Option<&SpanRecord> {
        let first = self.spans.first()?.id;
        self.spans
            .get(usize::try_from(id.checked_sub(first)?).ok()?)
    }

    /// Retained spans with the given name.
    pub fn count_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// The deepest nesting level in the tree (0 for an empty tree).
    pub fn max_depth(&self) -> usize {
        self.spans.iter().map(|s| s.depth).max().unwrap_or(0)
    }

    /// Zero every wall-clock timestamp, leaving only the deterministic
    /// structure — the trace analogue of
    /// [`zero_wallclock`](crate::metrics) on metric snapshots.
    pub fn zero_wallclock(&mut self) {
        for span in &mut self.spans {
            span.start_us = 0;
            span.end_us = 0;
        }
    }

    /// Export as Chrome `trace_event` JSON (the "JSON Array Format"
    /// wrapped in an object), loadable in Perfetto and
    /// `chrome://tracing`.
    ///
    /// Every span becomes one complete (`"ph":"X"`) event with `ts`/`dur`
    /// in microseconds, `pid` 0 and the lane as `tid`; span id, parent
    /// and detail ride in `args`.  One `thread_name` metadata event per
    /// lane labels the lanes (`driver`, `rank0`, …).  Events are emitted
    /// in open order, so `ts` is strictly increasing.
    pub fn to_chrome_json(&self) -> String {
        let mut lanes: Vec<usize> = self.spans.iter().map(|s| s.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        let metadata = lanes.into_iter().map(|lane| {
            JsonObject::new()
                .field_str("name", "thread_name")
                .field_str("ph", "M")
                .field_usize("pid", 0)
                .field_usize("tid", lane)
                .field_raw(
                    "args",
                    &JsonObject::new()
                        .field_str("name", &lane_label(lane))
                        .finish(),
                )
                .finish()
        });
        let spans = self.spans.iter().map(|s| {
            let mut args = JsonObject::new().field_u64("id", s.id).field_raw(
                "parent",
                &s.parent
                    .map_or_else(|| "null".to_string(), |p| p.to_string()),
            );
            args = args.field_usize("depth", s.depth);
            if !s.detail.is_empty() {
                args = args.field_str("detail", &s.detail);
            }
            JsonObject::new()
                .field_str("name", &s.name)
                .field_str("cat", "unsnap")
                .field_str("ph", "X")
                .field_u64("ts", s.start_us)
                .field_u64("dur", s.duration_us())
                .field_usize("pid", 0)
                .field_usize("tid", s.lane)
                .field_raw("args", &args.finish())
                .finish()
        });
        JsonObject::new()
            .field_raw("traceEvents", &array_raw(metadata.chain(spans)))
            .field_str("displayTimeUnit", "ms")
            .field_u64("droppedSpans", self.dropped)
            .finish()
    }

    /// Export as collapsed-stack flamegraph text: one
    /// `lane;frame;...;frame value` line per distinct stack, where the
    /// value is the stack's summed *self* time in microseconds (clamped
    /// to at least 1 so structure-only trees still render).  Lines are
    /// sorted, so the output is deterministic given deterministic
    /// structure and pinned clocks.
    pub fn to_collapsed(&self) -> String {
        let index: BTreeMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        // Self time = duration minus the duration of retained children.
        let mut child_us = vec![0u64; self.spans.len()];
        for span in &self.spans {
            if let Some(parent_idx) = span.parent.and_then(|p| index.get(&p)) {
                child_us[*parent_idx] += span.duration_us();
            }
        }
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for (i, span) in self.spans.iter().enumerate() {
            let mut frames = vec![span.name.clone()];
            let mut cursor = span.parent;
            while let Some(parent_id) = cursor {
                match index.get(&parent_id) {
                    Some(&idx) => {
                        frames.push(self.spans[idx].name.clone());
                        cursor = self.spans[idx].parent;
                    }
                    // Parent evicted by the ring: root the stack here.
                    None => break,
                }
            }
            frames.push(lane_label(span.lane));
            frames.reverse();
            let self_us = span.duration_us().saturating_sub(child_us[i]).max(1);
            *stacks.entry(frames.join(";")).or_insert(0) += self_us;
        }
        let mut out = String::new();
        for (stack, value) in stacks {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }
}

/// The span recorder: per-lane open-span stacks over a bounded ring
/// buffer of records.
///
/// The tracer is single-threaded by design — distributed drivers replay
/// rank event logs in rank order on the driver thread, so one tracer
/// sees every lane's events in a deterministic sequence.  Timestamps
/// come from the tracer's **own** clock (arrival time), never from the
/// solver's clock, so attaching a tracer adds no solver-side clock
/// reads and cannot disturb mock-clock-pinned phase timings.
#[derive(Debug)]
pub struct Tracer {
    clock: Box<dyn Clock>,
    capacity: usize,
    spans: VecDeque<SpanRecord>,
    stacks: Vec<Vec<u64>>,
    next_id: u64,
    dropped: u64,
    last_ts: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer over the system clock with the default ring capacity.
    pub fn new() -> Self {
        Self::with_clock(Box::new(SystemClock::new()))
    }

    /// A tracer over the given clock (e.g. a
    /// [`MockClock`](crate::clock::MockClock) to pin timestamps).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Self {
            clock,
            capacity: DEFAULT_SPAN_CAPACITY,
            spans: VecDeque::new(),
            stacks: Vec::new(),
            next_id: 0,
            dropped: 0,
            last_ts: 0,
        }
    }

    /// Override the ring-buffer bound (mainly for tests).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Strictly-increasing microsecond timestamps: real time when it
    /// moves, `last + 1` when it does not — monotone ordering is a
    /// structural guarantee, not a clock property.
    fn tick(&mut self) -> u64 {
        let now = self.clock.now().as_micros() as u64;
        let ts = now.max(self.last_ts + 1);
        self.last_ts = ts;
        ts
    }

    /// Open a span on `lane`, nested under the lane's current top.
    /// Returns the new span's id.
    pub fn open(&mut self, lane: usize, name: &str, detail: &str) -> u64 {
        let ts = self.tick();
        if self.stacks.len() <= lane {
            self.stacks.resize_with(lane + 1, Vec::new);
        }
        let parent = self.stacks[lane].last().copied();
        let depth = self.stacks[lane].len();
        let id = self.next_id;
        self.next_id += 1;
        self.stacks[lane].push(id);
        if self.spans.len() >= self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(SpanRecord {
            id,
            parent,
            lane,
            depth,
            name: name.to_string(),
            detail: detail.to_string(),
            start_us: ts,
            end_us: ts,
        });
        id
    }

    /// Close the innermost open span on `lane` (a no-op if none is
    /// open, so a stray close cannot corrupt the tree).
    pub fn close(&mut self, lane: usize) {
        let ts = self.tick();
        let Some(id) = self.stacks.get_mut(lane).and_then(Vec::pop) else {
            return;
        };
        // Ids are contiguous in the deque (sequential opens, front-only
        // eviction), so the slot is a direct offset; an evicted span
        // just loses its close timestamp.
        if let Some(front) = self.spans.front().map(|s| s.id) {
            if let Some(offset) = id.checked_sub(front) {
                if let Some(span) = self.spans.get_mut(offset as usize) {
                    span.end_us = ts;
                }
            }
        }
    }

    /// The current nesting depth of `lane` (0 = nothing open).
    pub fn open_depth(&self, lane: usize) -> usize {
        self.stacks.get(lane).map_or(0, Vec::len)
    }

    /// Spans evicted by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Close anything still open (innermost first, per lane) and return
    /// the finished tree.
    pub fn finish(mut self) -> TraceTree {
        for lane in 0..self.stacks.len() {
            while self.open_depth(lane) > 0 {
                self.close(lane);
            }
        }
        TraceTree {
            spans: self.spans.into_iter().collect(),
            dropped: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::reader;
    use std::time::Duration;

    fn mock_tracer() -> Tracer {
        Tracer::with_clock(Box::new(MockClock::with_step(Duration::from_micros(10))))
    }

    #[test]
    fn spans_nest_with_sequential_ids_and_parents() {
        let mut t = mock_tracer();
        let outer = t.open(0, "outer", "outer=0");
        let sweep = t.open(0, "sweep", "");
        assert_eq!(t.open_depth(0), 2);
        t.close(0);
        let krylov = t.open(0, "krylov", "");
        t.close(0);
        t.close(0);
        let tree = t.finish();

        assert_eq!((outer, sweep, krylov), (0, 1, 2));
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.spans[0].parent, None);
        assert_eq!(tree.spans[1].parent, Some(0));
        assert_eq!(tree.spans[2].parent, Some(0));
        assert_eq!(tree.spans[0].depth, 0);
        assert_eq!(tree.spans[1].depth, 1);
        assert_eq!(tree.max_depth(), 1);
        assert_eq!(tree.count_named("sweep"), 1);
        assert_eq!(tree.span(2).unwrap().name, "krylov");
        assert!(tree.span(7).is_none());
        // Strictly increasing stamps, spans contain their children.
        assert!(tree.spans[1].start_us > tree.spans[0].start_us);
        assert!(tree.spans[1].end_us < tree.spans[0].end_us);
    }

    #[test]
    fn lanes_keep_independent_stacks() {
        let mut t = mock_tracer();
        t.open(0, "outer", "");
        t.open(2, "rank_solve", "");
        t.open(2, "sweep", "");
        t.close(2);
        t.close(2);
        t.close(0);
        let tree = t.finish();
        assert_eq!(tree.spans[1].lane, 2);
        assert_eq!(tree.spans[1].parent, None); // lane roots don't cross lanes
        assert_eq!(tree.spans[2].parent, Some(1));
        assert_eq!(lane_label(0), "driver");
        assert_eq!(lane_label(2), "rank1");
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let mut t = mock_tracer().with_capacity(2);
        for i in 0..4 {
            t.open(0, &format!("s{i}"), "");
            t.close(0);
        }
        let tree = t.finish();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.dropped, 2);
        assert_eq!(tree.spans[0].id, 2);
        assert_eq!(tree.span(2).unwrap().name, "s2");
        assert!(tree.span(0).is_none());
    }

    #[test]
    fn close_without_open_is_a_noop() {
        let mut t = mock_tracer();
        t.close(0);
        t.close(5);
        assert_eq!(t.finish().len(), 0);
    }

    #[test]
    fn finish_closes_leftover_spans() {
        let mut t = mock_tracer();
        t.open(0, "outer", "");
        t.open(0, "sweep", "");
        let tree = t.finish();
        assert!(tree.spans[1].end_us >= tree.spans[1].start_us);
        assert!(tree.spans[0].end_us > tree.spans[1].end_us);
    }

    #[test]
    fn structural_equality_ignores_timestamps() {
        let build = |step_us: u64| {
            let mut t = Tracer::with_clock(Box::new(MockClock::with_step(Duration::from_micros(
                step_us,
            ))));
            t.open(0, "outer", "outer=0");
            t.open(0, "sweep", "");
            t.close(0);
            t.close(0);
            t.finish()
        };
        let fast = build(1);
        let slow = build(5000);
        assert_ne!(fast.spans[1].end_us, slow.spans[1].end_us);
        assert_eq!(fast, slow);

        let mut stripped = slow.clone();
        stripped.zero_wallclock();
        assert!(stripped
            .spans
            .iter()
            .all(|s| s.start_us == 0 && s.end_us == 0));

        // Structure differences do break equality.
        let mut other = build(1);
        other.spans[1].name = "krylov".to_string();
        assert_ne!(fast, other);
    }

    #[test]
    fn chrome_export_parses_with_monotone_nested_events() {
        let mut t = mock_tracer();
        t.open(0, "outer", "outer=0");
        t.open(0, "sweep", "");
        t.open(1, "rank_solve", "");
        t.close(1);
        t.close(0);
        t.open(0, "krylov", "");
        t.close(0);
        t.close(0);
        let tree = t.finish();

        let doc = reader::parse(&tree.to_chrome_json()).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 lanes of metadata + 4 spans.
        assert_eq!(events.len(), 6);
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 4);
        let mut last_ts = 0u64;
        for event in &spans {
            let ts = event.get("ts").unwrap().as_u64().unwrap();
            assert!(ts > last_ts, "timestamps must be strictly increasing");
            last_ts = ts;
            assert!(event.get("dur").unwrap().as_u64().is_some());
            assert_eq!(event.get("pid").unwrap().as_u64(), Some(0));
        }
        // The sweep span nests strictly inside the outer span.
        let outer = &spans[0];
        let sweep = &spans[1];
        let outer_start = outer.get("ts").unwrap().as_u64().unwrap();
        let outer_end = outer_start + outer.get("dur").unwrap().as_u64().unwrap();
        let sweep_start = sweep.get("ts").unwrap().as_u64().unwrap();
        let sweep_end = sweep_start + sweep.get("dur").unwrap().as_u64().unwrap();
        assert!(outer_start < sweep_start && sweep_end < outer_end);
        // Lane metadata names both lanes.
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(names, vec!["driver".to_string(), "rank0".to_string()]);
        assert_eq!(doc.get("droppedSpans").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn collapsed_export_sums_self_time_per_stack() {
        let mut t = mock_tracer();
        t.open(0, "outer", "");
        t.open(0, "sweep", "");
        t.close(0);
        t.open(0, "sweep", "");
        t.close(0);
        t.close(0);
        let tree = t.finish();
        let collapsed = tree.to_collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().any(|l| l.starts_with("driver;outer ")));
        let sweep_line = lines
            .iter()
            .find(|l| l.starts_with("driver;outer;sweep "))
            .expect("merged sweep stack");
        let value: u64 = sweep_line.rsplit(' ').next().unwrap().parse().unwrap();
        // Two 10 µs-step spans: each open+close brackets one step.
        assert!(value >= 2);
    }
}
