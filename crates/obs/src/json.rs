//! A minimal hand-rolled JSON writer.
//!
//! The workspace's `serde` is an offline no-op stand-in (the build
//! environment has no crates.io access), so outcome serialisation for
//! external tooling is done with this small, dependency-free writer
//! instead.  It covers exactly what the benchmark binaries need — objects,
//! arrays, strings, booleans, integers and IEEE doubles — and nothing
//! else.  (It lived in `unsnap-core` before the observability crate
//! existed; `unsnap_core::json` still re-exports it.)
//!
//! Numbers use Rust's shortest-round-trip `Display` for `f64`, so parsing
//! the emitted JSON recovers the exact bit pattern; non-finite values
//! (which JSON cannot represent) are emitted as `null`.
//!
//! ```
//! use unsnap_obs::json::JsonObject;
//!
//! let s = JsonObject::new()
//!     .field_str("name", "tiny")
//!     .field_usize("sweeps", 12)
//!     .field_f64("flux", 1.5)
//!     .finish();
//! assert_eq!(s, r#"{"name":"tiny","sweeps":12,"flux":1.5}"#);
//! ```

/// Escape a string for inclusion in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (`null` for non-finite values, which
/// JSON has no encoding for).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Rust's Display for f64 is the shortest string that round-trips.
        let s = format!("{v}");
        // `Display` never emits an exponent for integral values, but it
        // also never emits a trailing `.0` — both are valid JSON.
        s
    } else {
        "null".to_string()
    }
}

/// Incremental writer for a JSON object.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Append a string field.
    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Append an `f64` field (`null` when non-finite).
    pub fn field_f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&number(value));
        self
    }

    /// Append a `usize` field.
    pub fn field_usize(mut self, key: &str, value: usize) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Append a `u64` field.
    pub fn field_u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Append a boolean field.
    pub fn field_bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Append an array-of-doubles field.
    pub fn field_f64_array(mut self, key: &str, values: &[f64]) -> Self {
        self.key(key);
        self.buf.push_str(&array_f64(values));
        self
    }

    /// Append an array-of-usize field.
    pub fn field_usize_array(mut self, key: &str, values: &[usize]) -> Self {
        self.key(key);
        self.buf.push_str(&array_usize(values));
        self
    }

    /// Append a field whose value is already-serialised JSON (a nested
    /// object or array).
    pub fn field_raw(mut self, key: &str, raw: &str) -> Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serialise a slice of doubles as a JSON array.
pub fn array_f64(values: &[f64]) -> String {
    let mut buf = String::from("[");
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&number(v));
    }
    buf.push(']');
    buf
}

/// Serialise a slice of usize as a JSON array.
pub fn array_usize(values: &[usize]) -> String {
    let mut buf = String::from("[");
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&v.to_string());
    }
    buf.push(']');
    buf
}

/// Serialise already-serialised JSON values as a JSON array.
pub fn array_raw<I: IntoIterator<Item = String>>(values: I) -> String {
    let mut buf = String::from("[");
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&v);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape("a\\b"), r"a\\b");
        assert_eq!(escape("line\nbreak\ttab"), r"line\nbreak\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain ünïcode"), "plain ünïcode");
    }

    #[test]
    fn numbers_round_trip_and_non_finite_become_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.1), "0.1");
        let v: f64 = number(1.0 / 3.0).parse().unwrap();
        assert_eq!(v, 1.0 / 3.0);
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn non_finite_values_stay_valid_json_in_arrays_and_objects() {
        // The satellite concern: residual histories containing NaN/±inf
        // must still serialise to parseable JSON.
        let arr = array_f64(&[1.0, f64::NAN, f64::INFINITY]);
        assert_eq!(arr, "[1,null,null]");
        let obj = JsonObject::new().field_f64("r", f64::NAN).finish();
        assert_eq!(obj, r#"{"r":null}"#);
        assert!(crate::reader::parse(&arr).is_ok());
        assert!(crate::reader::parse(&obj).is_ok());
    }

    #[test]
    fn objects_and_arrays_compose() {
        let inner = array_f64(&[1.0, 0.5]);
        let s = JsonObject::new()
            .field_str("k", "v")
            .field_bool("ok", true)
            .field_u64("n", 3)
            .field_raw("h", &inner)
            .finish();
        assert_eq!(s, r#"{"k":"v","ok":true,"n":3,"h":[1,0.5]}"#);
        assert_eq!(array_raw(vec!["1".to_string(), "{}".to_string()]), "[1,{}]");
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array_f64(&[]), "[]");
        assert_eq!(array_usize(&[]), "[]");
        assert_eq!(array_usize(&[3, 1, 4]), "[3,1,4]");
        assert_eq!(
            JsonObject::new().field_usize_array("r", &[2, 5]).finish(),
            r#"{"r":[2,5]}"#
        );
    }
}
