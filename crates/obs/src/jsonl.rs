//! Line-oriented JSON (JSONL): the run-log format.
//!
//! A run log is one JSON document per line — append-friendly,
//! stream-parseable, and trivially mergeable, which is exactly what the
//! bench harness's `--metrics-out` sink and the solver's event log
//! writer need.  The writer refuses nothing but newlines (a document
//! with an embedded newline would corrupt the framing, so it errors);
//! the readers parse each non-empty line with [`crate::reader`]
//! and report the 1-based line number on failure.
//!
//! ```
//! use unsnap_obs::jsonl::{read_str, JsonlWriter};
//!
//! let mut buf = Vec::new();
//! {
//!     let mut w = JsonlWriter::new(&mut buf);
//!     w.write_line(r#"{"sweep":1}"#).unwrap();
//!     w.write_line(r#"{"sweep":2}"#).unwrap();
//! }
//! let docs = read_str(std::str::from_utf8(&buf).unwrap()).unwrap();
//! assert_eq!(docs.len(), 2);
//! assert_eq!(docs[1].get("sweep").unwrap().as_usize(), Some(2));
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::reader::{self, JsonValue};

/// An append-only writer of one-JSON-document-per-line streams.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    inner: W,
}

impl JsonlWriter<BufWriter<File>> {
    /// Create (truncating) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }

    /// Open `path` for appending, creating it if missing — the mode the
    /// shared `--metrics-out` flag uses so several bench invocations can
    /// feed one trajectory file.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(Self::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlWriter<W> {
    /// Wrap any writer.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Append one JSON document as a line.  `json` must be a complete
    /// single-line document (embedded newlines would break the framing).
    pub fn write_line(&mut self, json: &str) -> io::Result<()> {
        if json.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "JSONL documents must not contain newlines",
            ));
        }
        self.inner.write_all(json.as_bytes())?;
        self.inner.write_all(b"\n")
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<W: Write> Drop for JsonlWriter<W> {
    fn drop(&mut self) {
        let _ = self.inner.flush();
    }
}

/// Parse a JSONL string: one [`JsonValue`] per non-empty line.
pub fn read_str(text: &str) -> Result<Vec<JsonValue>, String> {
    let mut docs = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = reader::parse(line).map_err(|e| format!("line {}: {e}", index + 1))?;
        docs.push(doc);
    }
    Ok(docs)
}

/// Read and parse a JSONL file.
pub fn read_file(path: impl AsRef<Path>) -> Result<Vec<JsonValue>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    read_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reads_back() {
        let mut buf = Vec::new();
        {
            let mut w = JsonlWriter::new(&mut buf);
            w.write_line(r#"{"a":1}"#).unwrap();
            w.write_line("[true,null]").unwrap();
            w.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "{\"a\":1}\n[true,null]\n");
        let docs = read_str(&text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].get("a").unwrap().as_usize(), Some(1));
        assert_eq!(docs[1].as_array().unwrap()[0].as_bool(), Some(true));
    }

    #[test]
    fn rejects_embedded_newlines() {
        let mut w = JsonlWriter::new(Vec::new());
        assert!(w.write_line("{\n}").is_err());
    }

    #[test]
    fn blank_lines_are_skipped_and_errors_carry_line_numbers() {
        let docs = read_str("\n{\"a\":1}\n\n").unwrap();
        assert_eq!(docs.len(), 1);
        let err = read_str("{\"a\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn file_round_trip_including_append() {
        let dir = std::env::temp_dir().join(format!("unsnap-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        {
            let mut w = JsonlWriter::create(&path).unwrap();
            w.write_line(r#"{"run":1}"#).unwrap();
        }
        {
            let mut w = JsonlWriter::append(&path).unwrap();
            w.write_line(r#"{"run":2}"#).unwrap();
        }
        let docs = read_file(&path).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[1].get("run").unwrap().as_usize(), Some(2));
        assert!(read_file(dir.join("missing.jsonl")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
