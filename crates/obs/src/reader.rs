//! A small recursive-descent JSON parser: the reading half of
//! [`json`](crate::json).
//!
//! The workspace emits JSON for tooling (outcome dumps, metrics records,
//! JSONL run logs) but until this module existed nothing in-tree could
//! consume it — round-trip tests, the `trajectory` merger and CI schema
//! checks all need a parser, and the vendored `serde` is a no-op
//! stand-in.  This one handles exactly standard JSON: objects (key order
//! preserved), arrays, strings with escapes, IEEE numbers, booleans and
//! `null`.
//!
//! ```
//! use unsnap_obs::reader::{parse, JsonValue};
//!
//! let v = parse(r#"{"name":"tiny","sweeps":12,"ok":true}"#).unwrap();
//! assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("tiny"));
//! assert_eq!(v.get("sweeps").and_then(JsonValue::as_usize), Some(12));
//! ```

use std::fmt;

/// A parsed JSON document.
///
/// Objects keep their fields in document order (a `Vec` of pairs, not a
/// map): the writer emits deterministic field order and the reader
/// preserves it, so round-tripped documents compare textually.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// workspace writer emits).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, fields in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup on an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `usize`, if this is a non-negative
    /// integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in document order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// True for `null` (the writer's encoding of non-finite floats).
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

impl fmt::Display for JsonValue {
    /// Re-serialise (compact form, same conventions as
    /// [`json`](crate::json) — field order preserved).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => write!(f, "{}", crate::json::number(*n)),
            JsonValue::String(s) => write!(f, "\"{}\"", crate::json::escape(s)),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", crate::json::escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).  Errors carry the byte offset they occurred at.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(format!(
                                            "invalid low surrogate at byte {}",
                                            self.pos
                                        ));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(format!(
                                        "invalid unicode escape at byte {}",
                                        self.pos
                                    ))
                                }
                            }
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated unicode escape".to_string());
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|e| e.to_string())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| format!("bad hex at byte {}", self.pos))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{array_f64, JsonObject};

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("1.5e-3").unwrap(), JsonValue::Number(1.5e-3));
        assert_eq!(parse("-42").unwrap(), JsonValue::Number(-42.0));
        assert_eq!(
            parse(r#""a\nb""#).unwrap(),
            JsonValue::String("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures_preserving_field_order() {
        let v = parse(r#"{"b":[1,2,{"c":null}],"a":"x"}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert!(arr[2].get("c").unwrap().is_null());
        assert_eq!(v.get("a").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_the_writers_output() {
        let written = JsonObject::new()
            .field_str("name", "quick \"run\"")
            .field_usize("sweeps", 12)
            .field_f64("flux", 1.0 / 3.0)
            .field_bool("ok", true)
            .field_raw("hist", &array_f64(&[1.0, f64::NAN]))
            .finish();
        let v = parse(&written).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("quick \"run\""));
        assert_eq!(v.get("sweeps").unwrap().as_usize(), Some(12));
        assert_eq!(v.get("flux").unwrap().as_f64(), Some(1.0 / 3.0));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let hist = v.get("hist").unwrap().as_array().unwrap();
        assert_eq!(hist[0].as_f64(), Some(1.0));
        assert!(hist[1].is_null()); // NaN was written as null
                                    // Display re-serialises to the identical compact text.
        assert_eq!(v.to_string(), written);
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        // \uXXXX escapes, including a surrogate pair for U+1F600.
        assert_eq!(
            parse(r#""\u0041\u00e9""#).unwrap().as_str(),
            Some("A\u{e9}")
        );
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1F600}")
        );
        // Raw multi-byte UTF-8 passes through untouched.
        assert_eq!(
            parse("\"plain ünïcode\"").unwrap().as_str(),
            Some("plain ünïcode")
        );
        // A lone high surrogate is not a character.
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1,}"#).is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("nul").is_err());
        let err = parse("[1,]").unwrap_err();
        assert!(err.contains("byte"), "error should locate itself: {err}");
    }

    #[test]
    fn numeric_accessors_guard_their_domains() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert!(parse("1099511627776").unwrap().as_u64().is_some());
        assert_eq!(parse("\"3\"").unwrap().as_f64(), None);
    }

    #[test]
    fn deeply_nested_values_parse_and_round_trip() {
        // 256 levels of alternating object/array nesting: the recursive
        // descent must neither reject nor corrupt a document this deep
        // (run-log event deltas nest phases inside records inside
        // frames, so depth is a real axis, if never this extreme).
        let depth = 256;
        let mut text = String::new();
        for _ in 0..depth {
            text.push_str(r#"{"inner":["#);
        }
        text.push_str("42");
        for _ in 0..depth {
            text.push_str("]}");
        }
        let v = parse(&text).unwrap();
        // Walk back down to the payload.
        let mut cursor = &v;
        for _ in 0..depth {
            cursor = &cursor.get("inner").unwrap().as_array().unwrap()[0];
        }
        assert_eq!(cursor.as_f64(), Some(42.0));
        // Display re-serialises to the identical text.
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn duplicate_keys_are_preserved_and_get_returns_the_first() {
        // The reader stores objects as ordered pairs, so duplicates are
        // representable; `get` resolves to the *first* occurrence — the
        // stable contract consumers (manifest parsing, event replay)
        // rely on when a log somehow carries a duplicated field.
        let v = parse(r#"{"outer":1,"outer":2,"flux":3}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields.len(), 3);
        assert_eq!(v.get("outer").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("flux").unwrap().as_f64(), Some(3.0));
        // Round-trip keeps both occurrences, in order.
        assert_eq!(v.to_string(), r#"{"outer":1,"outer":2,"flux":3}"#);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Fuzz-ish robustness: mutate random bytes of a writer-produced
        /// document into random printable ASCII and require the parser
        /// to return (Ok or Err) — never panic, hang or overflow.
        #[test]
        fn random_byte_mutations_error_not_panic(
            flips in proptest::collection::vec((0usize..512, 0x20usize..0x7f), 1..8),
        ) {
            let document = JsonObject::new()
                .field_str("name", "tiny")
                .field_f64("flux", 1.0 / 3.0)
                .field_raw("hist", &array_f64(&[1.0, f64::NAN, f64::INFINITY]))
                .field_bool("ok", true)
                .finish();
            let mut bytes = document.into_bytes();
            for (pos, replacement) in flips {
                let at = pos % bytes.len();
                bytes[at] = replacement as u8;
            }
            // Printable-ASCII substitutions keep the buffer valid UTF-8.
            let mutated = String::from_utf8(bytes).unwrap();
            let _ = parse(&mutated);
        }
    }
}
