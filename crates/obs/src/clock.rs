//! The pluggable time source behind every wall-clock measurement.
//!
//! Solvers never call [`std::time::Instant::now`] directly for phase
//! timing; they hold a `Box<dyn Clock>` and measure spans as the
//! difference of two [`Clock::now`] readings.  Production uses
//! [`SystemClock`]; tests inject a [`MockClock`] and advance it by hand
//! (or let it step automatically per reading), which makes timer outputs
//! *exact* rather than merely plausible — the determinism suite can then
//! pin wall-clock fields the same way it pins physics.
//!
//! ```
//! use std::time::Duration;
//! use unsnap_obs::clock::{Clock, MockClock};
//!
//! let clock = MockClock::new();
//! let handle = clock.clone(); // shared state: advance through either
//! let t0 = clock.now();
//! handle.advance(Duration::from_millis(250));
//! assert_eq!(clock.now() - t0, Duration::from_millis(250));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source measured as a [`Duration`] since an arbitrary
/// per-clock origin.
///
/// `Send + Sync` is part of the contract: distributed drivers share one
/// clock across their rank worker pool.  Implementations must be
/// monotonic (readings never decrease) but need not track real time —
/// that freedom is exactly what [`MockClock`] exploits.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current reading.  Only differences of readings are
    /// meaningful; the origin is implementation-defined.
    fn now(&self) -> Duration;
}

/// The production clock: a monotonic reading anchored at construction.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A hand-driven clock for tests.
///
/// Clones share state (an atomic nanosecond counter), so a test keeps
/// one clone as a handle and hands another to the solver; advancing the
/// handle advances the solver's view.  With a non-zero
/// [`step`](MockClock::with_step) the clock also auto-advances *after*
/// every reading, so code that brackets a span with two `now()` calls
/// observes exactly one step per span — deterministic timings without
/// any test-side choreography.
#[derive(Debug, Clone, Default)]
pub struct MockClock {
    nanos: Arc<AtomicU64>,
    step_nanos: u64,
}

impl MockClock {
    /// A clock frozen at zero; advance it explicitly.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock that advances itself by `step` after every reading.
    pub fn with_step(step: Duration) -> Self {
        Self {
            nanos: Arc::new(AtomicU64::new(0)),
            step_nanos: step.as_nanos() as u64,
        }
    }

    /// Move the clock forward by `delta`.
    pub fn advance(&self, delta: Duration) {
        self.nanos
            .fetch_add(delta.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Set the absolute reading (must not move backwards for the
    /// monotonicity contract to hold; the clock does not check).
    pub fn set(&self, reading: Duration) {
        self.nanos
            .store(reading.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now(&self) -> Duration {
        let nanos = self.nanos.fetch_add(self.step_nanos, Ordering::SeqCst);
        Duration::from_nanos(nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_advances_through_any_clone() {
        let clock = MockClock::new();
        let handle = clock.clone();
        assert_eq!(clock.now(), Duration::ZERO);
        handle.advance(Duration::from_secs(2));
        assert_eq!(clock.now(), Duration::from_secs(2));
        clock.set(Duration::from_secs(5));
        assert_eq!(handle.now(), Duration::from_secs(5));
    }

    #[test]
    fn stepping_clock_charges_one_step_per_reading() {
        let clock = MockClock::with_step(Duration::from_millis(3));
        let t0 = clock.now();
        let t1 = clock.now();
        assert_eq!(t0, Duration::ZERO);
        assert_eq!(t1 - t0, Duration::from_millis(3));
        // A bracketed span therefore measures exactly one step.
        let start = clock.now();
        let end = clock.now();
        assert_eq!(end - start, Duration::from_millis(3));
    }

    #[test]
    fn clocks_are_object_safe_and_shareable() {
        let boxed: Box<dyn Clock> = Box::new(MockClock::new());
        assert_eq!(boxed.now(), Duration::ZERO);
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&boxed);
    }
}
