//! Property-based tests of the sweep scheduler.

use proptest::prelude::*;

use unsnap_mesh::{StructuredGrid, UnstructuredMesh};
use unsnap_sweep::graph::DependencyGraph;
use unsnap_sweep::schedule::SweepSchedule;

fn direction() -> impl Strategy<Value = [f64; 3]> {
    (
        prop_oneof![-1.0f64..-0.02, 0.02f64..1.0],
        prop_oneof![-1.0f64..-0.02, 0.02f64..1.0],
        prop_oneof![-1.0f64..-0.02, 0.02f64..1.0],
    )
        .prop_map(|(x, y, z)| {
            let n = (x * x + y * y + z * z).sqrt();
            [x / n, y / n, z / n]
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedule_is_a_complete_topological_order(
        omega in direction(),
        nx in 1usize..6,
        ny in 1usize..6,
        nz in 1usize..6,
        twist in 0.0f64..0.005,
    ) {
        let mesh = UnstructuredMesh::from_structured(
            &StructuredGrid::new(nx, ny, nz, 1.0, 1.0, 1.0),
            twist,
        );
        let graph = DependencyGraph::build(&mesh, omega);
        let schedule = SweepSchedule::from_graph(&graph, None).unwrap();
        prop_assert_eq!(schedule.num_cells_scheduled(), mesh.num_cells());
        prop_assert_eq!(schedule.validate_against(&graph), 0);
        // tlevel of a cell is one more than the max tlevel of its upwind
        // neighbours.
        for (up, downs) in graph.downwind.iter().enumerate() {
            for &(down, _) in downs {
                prop_assert!(schedule.tlevel[down] > schedule.tlevel[up]);
            }
        }
        // Stats consistency.
        let stats = schedule.stats();
        prop_assert_eq!(stats.num_cells, mesh.num_cells());
        prop_assert!(stats.max_bucket >= stats.min_bucket);
        prop_assert!(stats.min_bucket >= 1);
    }

    #[test]
    fn opposite_directions_reverse_the_sweep(
        omega in direction(),
        n in 2usize..5,
    ) {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001);
        let forward = SweepSchedule::build(&mesh, omega).unwrap();
        let backward =
            SweepSchedule::build(&mesh, [-omega[0], -omega[1], -omega[2]]).unwrap();
        prop_assert_eq!(forward.num_buckets(), backward.num_buckets());
        // The first bucket of the forward sweep is the last of the backward
        // sweep (as sets).
        let mut first: Vec<usize> = forward.buckets.first().unwrap().clone();
        let mut last: Vec<usize> = backward.buckets.last().unwrap().clone();
        first.sort_unstable();
        last.sort_unstable();
        prop_assert_eq!(first, last);
    }

    #[test]
    fn masked_schedules_partition_the_full_mesh(
        omega in direction(),
        n in 2usize..5,
        split in 1usize..4,
    ) {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001);
        let grid = *mesh.origin_grid();
        let split = split.min(n);
        // Partition by x slab into `split` pieces; the union of the masked
        // schedules covers every cell exactly once.
        let mut covered = vec![0usize; mesh.num_cells()];
        for part in 0..split {
            let lo = part * n / split;
            let hi = (part + 1) * n / split;
            let owned: Vec<bool> = (0..mesh.num_cells())
                .map(|id| {
                    let (i, _, _) = grid.cell_ijk(id);
                    i >= lo && i < hi
                })
                .collect();
            let schedule = SweepSchedule::build_masked(&mesh, omega, &owned).unwrap();
            for &cell in schedule.buckets.iter().flatten() {
                covered[cell] += 1;
                prop_assert!(owned[cell]);
            }
            // Every non-empty subdomain can start immediately (block
            // Jacobi property).
            if owned.iter().any(|&o| o) {
                prop_assert!(!schedule.buckets.is_empty());
                prop_assert!(!schedule.buckets[0].is_empty());
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }
}
