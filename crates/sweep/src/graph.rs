//! The per-angle dependency graph of the sweep.
//!
//! For a fixed direction `Ω`, every interior face of the mesh induces one
//! dependency edge: the cell on the upwind side must be solved before the
//! cell on the downwind side.  Boundary faces induce no edge (their data
//! comes from boundary conditions), and faces whose owner is on a different
//! rank induce no *local* edge either — under the block-Jacobi global
//! schedule (§III-A.1 of the paper) remote data is taken from the previous
//! iteration's halo, so each rank sweeps its own subdomain independently.

use unsnap_mesh::{NeighborRef, UnstructuredMesh, NUM_FACES};

use crate::upwind::{classify_face, FaceClass};

/// Dependency information for one sweep direction over (a subset of) the
/// mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyGraph {
    /// The sweep direction this graph was built for.
    pub omega: [f64; 3],
    /// For every cell: the faces through which particles enter
    /// (`Ω·n < 0`).
    pub inflow_faces: Vec<Vec<usize>>,
    /// For every cell: the faces through which particles leave.
    pub outflow_faces: Vec<Vec<usize>>,
    /// For every cell: the number of *local* upwind dependencies, i.e.
    /// inflow faces whose neighbouring cell is in the same domain.
    pub upwind_count: Vec<usize>,
    /// For every cell: list of `(downwind cell, its inflow face)` pairs fed
    /// by this cell.
    pub downwind: Vec<Vec<(usize, usize)>>,
}

impl DependencyGraph {
    /// Build the dependency graph for the whole mesh.
    pub fn build(mesh: &UnstructuredMesh, omega: [f64; 3]) -> Self {
        Self::build_masked(mesh, omega, None)
    }

    /// Build the dependency graph restricted to the cells for which
    /// `owned[cell]` is `true` (cells outside the mask contribute no local
    /// dependencies — their data arrives through the halo).  `None` means
    /// all cells are owned.
    pub fn build_masked(mesh: &UnstructuredMesh, omega: [f64; 3], owned: Option<&[bool]>) -> Self {
        let n = mesh.num_cells();
        if let Some(mask) = owned {
            assert_eq!(mask.len(), n, "ownership mask length mismatch");
        }
        let is_owned = |cell: usize| owned.is_none_or(|m| m[cell]);

        let mut inflow_faces = vec![Vec::new(); n];
        let mut outflow_faces = vec![Vec::new(); n];
        let mut upwind_count = vec![0usize; n];
        let mut downwind = vec![Vec::new(); n];

        for cell in 0..n {
            if !is_owned(cell) {
                continue;
            }
            for face in 0..NUM_FACES {
                match classify_face(mesh, cell, face, omega, 1e-12) {
                    FaceClass::Inflow => {
                        inflow_faces[cell].push(face);
                        if let NeighborRef::Interior { cell: upwind, .. } =
                            mesh.neighbor(cell, face)
                        {
                            if is_owned(upwind) {
                                upwind_count[cell] += 1;
                                downwind[upwind].push((cell, face));
                            }
                        }
                    }
                    FaceClass::Outflow => outflow_faces[cell].push(face),
                    FaceClass::Tangential => {}
                }
            }
        }

        Self {
            omega,
            inflow_faces,
            outflow_faces,
            upwind_count,
            downwind,
        }
    }

    /// Number of cells in the underlying mesh.
    pub fn num_cells(&self) -> usize {
        self.upwind_count.len()
    }

    /// Total number of local dependency edges.
    pub fn num_edges(&self) -> usize {
        self.downwind.iter().map(|d| d.len()).sum()
    }

    /// Cells with no local upwind dependency (the seeds of the sweep).
    pub fn seed_cells(&self) -> Vec<usize> {
        self.upwind_count
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_mesh::StructuredGrid;

    fn mesh(n: usize) -> UnstructuredMesh {
        UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001)
    }

    #[test]
    fn octant_direction_gives_three_in_three_out() {
        let m = mesh(3);
        let g = DependencyGraph::build(&m, [0.5, 0.6, 0.62]);
        for cell in 0..m.num_cells() {
            assert_eq!(g.inflow_faces[cell].len(), 3);
            assert_eq!(g.outflow_faces[cell].len(), 3);
        }
    }

    #[test]
    fn corner_cell_is_the_only_seed_for_diagonal_direction() {
        let m = mesh(3);
        // +++ octant: the (0,0,0) corner cell has all inflow faces on the
        // domain boundary, every other cell depends on something.
        let g = DependencyGraph::build(&m, [0.5, 0.6, 0.62]);
        assert_eq!(g.seed_cells(), vec![0]);
        // The opposite octant seeds from the far corner.
        let g = DependencyGraph::build(&m, [-0.5, -0.6, -0.62]);
        assert_eq!(g.seed_cells(), vec![m.num_cells() - 1]);
    }

    #[test]
    fn edge_count_matches_interior_inflow_faces() {
        let m = mesh(4);
        let g = DependencyGraph::build(&m, [0.3, 0.9, 0.4]);
        // Every interior face is an inflow face of exactly one of its two
        // cells, so edges = interior faces / 2.
        let stats = m.connectivity_stats();
        assert_eq!(g.num_edges(), stats.interior_faces / 2);
        // upwind_count totals must equal the edge count.
        let total: usize = g.upwind_count.iter().sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn downwind_lists_are_consistent_with_upwind_counts() {
        let m = mesh(3);
        let g = DependencyGraph::build(&m, [0.7, 0.2, 0.8]);
        let mut counted = vec![0usize; m.num_cells()];
        for dl in &g.downwind {
            for &(cell, face) in dl {
                counted[cell] += 1;
                assert!(g.inflow_faces[cell].contains(&face));
            }
        }
        assert_eq!(counted, g.upwind_count);
    }

    #[test]
    fn masked_graph_ignores_unowned_cells() {
        let m = mesh(4);
        // Own only the x < 2 half.
        let grid = *m.origin_grid();
        let owned: Vec<bool> = (0..m.num_cells())
            .map(|id| grid.cell_ijk(id).0 < 2)
            .collect();
        let g = DependencyGraph::build_masked(&m, [0.5, 0.5, 0.7], Some(&owned));
        for cell in 0..m.num_cells() {
            if !owned[cell] {
                assert!(g.inflow_faces[cell].is_empty());
                assert!(g.outflow_faces[cell].is_empty());
                assert_eq!(g.upwind_count[cell], 0);
                assert!(g.downwind[cell].is_empty());
            }
        }
        // No edge crosses the ownership boundary.
        for (up, dl) in g.downwind.iter().enumerate() {
            for &(down, _) in dl {
                assert!(owned[up] && owned[down]);
            }
        }
    }

    #[test]
    fn single_cell_graph_has_no_edges() {
        let m = UnstructuredMesh::from_structured(&StructuredGrid::cube(1, 1.0), 0.0);
        let g = DependencyGraph::build(&m, [0.57, 0.57, 0.59]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.seed_cells(), vec![0]);
        assert_eq!(g.inflow_faces[0].len(), 3);
    }
}
