//! Concurrency-scheme descriptors: which loop nest the assemble/solve
//! routine uses and which of its loops are threaded.
//!
//! Figures 3 and 4 of the paper compare six parallel variants of the sweep.
//! Each variant is named by its loop order from outermost to innermost —
//! `angle/element/group` or `angle/group/element` — with bold type marking
//! the loops that are parallelised with OpenMP (the element-node loop is
//! always innermost and always vectorised, so it is not part of the name).
//! The storage layout of the angular flux, scalar flux and source arrays is
//! changed to *match* the loop order, which is what makes the comparison a
//! data-layout experiment as much as a scheduling one.
//!
//! This module gives those variants a first-class representation that the
//! solver driver in `unsnap-core` dispatches on and the benchmark binaries
//! iterate over.

use serde::{Deserialize, Serialize};

/// Order of the two interchangeable middle loops of the sweep
/// (the angle loop is always outermost; element nodes are always
/// innermost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopOrder {
    /// `angle / element / group`: for each element in the bucket, all
    /// energy groups are processed before moving to the next element.
    /// Matching data layout: group index is the fastest-moving array
    /// extent after the node index.
    ElementThenGroup,
    /// `angle / group / element`: for each energy group, all elements in
    /// the bucket are processed.  Matching data layout: element index is
    /// the fastest-moving extent after the node index.
    GroupThenElement,
}

impl LoopOrder {
    /// Both loop orders, in the order the paper's legends list them.
    pub fn all() -> [LoopOrder; 2] {
        [LoopOrder::ElementThenGroup, LoopOrder::GroupThenElement]
    }

    /// The `outer/inner` name fragment used in figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            LoopOrder::ElementThenGroup => "element/group",
            LoopOrder::GroupThenElement => "group/element",
        }
    }
}

/// Which loops of the nest are executed in parallel (threaded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadedLoops {
    /// Only the outer of the two middle loops is threaded.
    OuterOnly,
    /// Only the inner of the two middle loops is threaded.
    InnerOnly,
    /// Both middle loops are threaded together (the OpenMP `collapse(2)`
    /// variant): the flattened element × group iteration space is divided
    /// among threads, which is what provides enough parallel work when the
    /// wavefront bucket is small (§IV-A.1 of the paper).
    Collapsed,
    /// Thread over angles within the octant instead (requires an atomic
    /// scalar-flux reduction; shown by the paper *not* to scale — kept as
    /// the ablation of §IV-A.3).
    Angles,
}

impl ThreadedLoops {
    /// The three variants that appear in Figures 3 and 4 (angle threading
    /// is the separate ablation).
    pub fn figure_variants() -> [ThreadedLoops; 3] {
        [
            ThreadedLoops::OuterOnly,
            ThreadedLoops::InnerOnly,
            ThreadedLoops::Collapsed,
        ]
    }
}

/// A complete concurrency scheme: loop order plus threading choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConcurrencyScheme {
    /// Order of the element and group loops.
    pub loop_order: LoopOrder,
    /// Which loops are threaded.
    pub threaded: ThreadedLoops,
}

impl ConcurrencyScheme {
    /// Create a scheme.
    pub fn new(loop_order: LoopOrder, threaded: ThreadedLoops) -> Self {
        Self {
            loop_order,
            threaded,
        }
    }

    /// The six schemes of Figures 3 and 4, in legend order.
    pub fn figure_schemes() -> Vec<ConcurrencyScheme> {
        let mut out = Vec::with_capacity(6);
        for order in LoopOrder::all() {
            for threaded in ThreadedLoops::figure_variants() {
                out.push(ConcurrencyScheme::new(order, threaded));
            }
        }
        out
    }

    /// The angle-threaded ablation scheme (§IV-A.3).
    pub fn angle_threaded(order: LoopOrder) -> Self {
        Self::new(order, ThreadedLoops::Angles)
    }

    /// The scheme the paper found fastest at full thread counts:
    /// `angle/element/group` with both loops collapsed.
    pub fn best() -> Self {
        Self::new(LoopOrder::ElementThenGroup, ThreadedLoops::Collapsed)
    }

    /// A serial scheme (no threading at all is expressed as threading the
    /// outer loop with one thread; the driver treats a thread count of 1 as
    /// serial execution regardless).
    pub fn serial() -> Self {
        Self::new(LoopOrder::ElementThenGroup, ThreadedLoops::OuterOnly)
    }

    /// Figure-legend style label, e.g. `"angle/element*/group*"` where a
    /// `*` marks a threaded loop (the paper uses bold type instead).
    pub fn label(&self) -> String {
        let (outer, inner) = match self.loop_order {
            LoopOrder::ElementThenGroup => ("element", "group"),
            LoopOrder::GroupThenElement => ("group", "element"),
        };
        match self.threaded {
            ThreadedLoops::OuterOnly => format!("angle/{outer}*/{inner}"),
            ThreadedLoops::InnerOnly => format!("angle/{outer}/{inner}*"),
            ThreadedLoops::Collapsed => format!("angle/{outer}*/{inner}*"),
            ThreadedLoops::Angles => format!("angle*/{outer}/{inner}"),
        }
    }
}

impl std::fmt::Display for ConcurrencyScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for ConcurrencyScheme {
    type Err = String;

    /// Parse either a figure-legend label (`angle/element*/group*`,
    /// `angle*/group/element`, …) — the exact strings
    /// [`Display`](std::fmt::Display) emits,
    /// so schemes round-trip through strings — or one of the friendly
    /// aliases `best` and `serial`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        match trimmed.to_ascii_lowercase().as_str() {
            "best" => return Ok(ConcurrencyScheme::best()),
            "serial" => return Ok(ConcurrencyScheme::serial()),
            _ => {}
        }

        let parts: Vec<&str> = trimmed.split('/').collect();
        let [angle, outer, inner] = parts.as_slice() else {
            return Err(format!(
                "expected 'angle/<outer>/<inner>' with optional '*' marks, got '{s}'"
            ));
        };
        let strip = |part: &str| -> (String, bool) {
            let starred = part.ends_with('*');
            (part.trim_end_matches('*').to_ascii_lowercase(), starred)
        };
        let (angle_name, angle_starred) = strip(angle);
        let (outer_name, outer_starred) = strip(outer);
        let (inner_name, inner_starred) = strip(inner);
        if angle_name != "angle" {
            return Err(format!("scheme must start with 'angle', got '{s}'"));
        }
        let loop_order = match (outer_name.as_str(), inner_name.as_str()) {
            ("element", "group") => LoopOrder::ElementThenGroup,
            ("group", "element") => LoopOrder::GroupThenElement,
            _ => {
                return Err(format!(
                    "middle loops must be element/group in either order, got '{s}'"
                ))
            }
        };
        let threaded = match (angle_starred, outer_starred, inner_starred) {
            (true, false, false) => ThreadedLoops::Angles,
            (false, true, false) => ThreadedLoops::OuterOnly,
            (false, false, true) => ThreadedLoops::InnerOnly,
            (false, true, true) => ThreadedLoops::Collapsed,
            _ => {
                return Err(format!(
                    "unsupported '*' combination in '{s}': thread the angle loop, one \
                     middle loop, or both middle loops"
                ))
            }
        };
        Ok(ConcurrencyScheme::new(loop_order, threaded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_figure_schemes() {
        let schemes = ConcurrencyScheme::figure_schemes();
        assert_eq!(schemes.len(), 6);
        // All distinct.
        for (i, a) in schemes.iter().enumerate() {
            for b in schemes.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn labels_are_legend_like() {
        let s = ConcurrencyScheme::new(LoopOrder::ElementThenGroup, ThreadedLoops::Collapsed);
        assert_eq!(s.label(), "angle/element*/group*");
        let s = ConcurrencyScheme::new(LoopOrder::GroupThenElement, ThreadedLoops::OuterOnly);
        assert_eq!(s.label(), "angle/group*/element");
        let s = ConcurrencyScheme::angle_threaded(LoopOrder::ElementThenGroup);
        assert_eq!(s.label(), "angle*/element/group");
        assert_eq!(format!("{s}"), s.label());
    }

    #[test]
    fn best_scheme_matches_paper_conclusion() {
        let best = ConcurrencyScheme::best();
        assert_eq!(best.loop_order, LoopOrder::ElementThenGroup);
        assert_eq!(best.threaded, ThreadedLoops::Collapsed);
    }

    #[test]
    fn loop_order_labels() {
        assert_eq!(LoopOrder::ElementThenGroup.label(), "element/group");
        assert_eq!(LoopOrder::GroupThenElement.label(), "group/element");
        assert_eq!(LoopOrder::all().len(), 2);
    }

    #[test]
    fn serial_scheme_exists() {
        let s = ConcurrencyScheme::serial();
        assert_eq!(s.threaded, ThreadedLoops::OuterOnly);
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        let mut schemes = ConcurrencyScheme::figure_schemes();
        schemes.push(ConcurrencyScheme::angle_threaded(
            LoopOrder::ElementThenGroup,
        ));
        schemes.push(ConcurrencyScheme::angle_threaded(
            LoopOrder::GroupThenElement,
        ));
        for scheme in schemes {
            let parsed: ConcurrencyScheme = scheme.label().parse().unwrap();
            assert_eq!(parsed, scheme, "round-tripping '{}'", scheme.label());
        }
    }

    #[test]
    fn from_str_accepts_aliases_and_rejects_garbage() {
        assert_eq!(
            "best".parse::<ConcurrencyScheme>().unwrap(),
            ConcurrencyScheme::best()
        );
        assert_eq!(
            "serial".parse::<ConcurrencyScheme>().unwrap(),
            ConcurrencyScheme::serial()
        );
        assert_eq!(
            "ANGLE/GROUP*/ELEMENT".parse::<ConcurrencyScheme>().unwrap(),
            ConcurrencyScheme::new(LoopOrder::GroupThenElement, ThreadedLoops::OuterOnly)
        );
        for bad in [
            "",
            "element/group",
            "angle/element/group/extra",
            "angle/foo*/bar",
            "angle*/element*/group*",
            "angle/element/group", // no loop threaded at all
        ] {
            assert!(
                bad.parse::<ConcurrencyScheme>().is_err(),
                "'{bad}' should fail"
            );
        }
    }
}
