//! Bucketed wavefront sweep schedule (tlevel buckets).
//!
//! "The schedule used in our implementation calculates the tlevel of each
//! element for each angle, and places cells with the same tlevel in a
//! bucket.  The buckets represent the cells on each hyperplane/wavefront as
//! the sweep progresses across the mesh." (§III-A.2 of the paper.)
//!
//! The construction is Kahn's algorithm over the per-angle dependency
//! graph: cells whose inflow faces are all satisfied by boundary (or halo)
//! data form bucket 0; solving a cell decrements the dependency counter of
//! each downwind neighbour, and a neighbour whose counter reaches zero
//! joins the next bucket.  The paper's first UnSNAP version assumes the
//! graph is acyclic (true for the twisted-structured meshes it uses); we
//! keep the same assumption but *detect* cycles and report them as an
//! error instead of hanging.

use serde::{Deserialize, Serialize};
use unsnap_mesh::UnstructuredMesh;

use crate::graph::DependencyGraph;

/// Failure modes of schedule construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The dependency graph contains at least one cycle; the payload lists
    /// the cells that could not be scheduled.
    CyclicDependency {
        /// Cells left unscheduled when the wavefront stalled.
        unscheduled: Vec<usize>,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::CyclicDependency { unscheduled } => write!(
                f,
                "sweep dependency graph is cyclic: {} cells could not be scheduled",
                unscheduled.len()
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Summary statistics of a schedule — the quantities that control how much
/// on-node parallelism the sweep exposes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Number of wavefront buckets (sweep steps).
    pub num_buckets: usize,
    /// Total cells scheduled.
    pub num_cells: usize,
    /// Smallest bucket (minimum concurrent work).
    pub min_bucket: usize,
    /// Largest bucket (maximum concurrent work).
    pub max_bucket: usize,
    /// Mean bucket size (average parallelism from the element dimension).
    pub mean_bucket: f64,
}

/// A wavefront sweep schedule for one angular direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSchedule {
    /// The direction this schedule was built for.
    pub omega: [f64; 3],
    /// Buckets of mutually independent cells, in sweep order.
    pub buckets: Vec<Vec<usize>>,
    /// tlevel of every scheduled cell (`usize::MAX` for cells outside the
    /// owned mask).
    pub tlevel: Vec<usize>,
    /// Inflow faces of every cell (copied from the dependency graph so the
    /// assembly kernel does not need to re-classify faces).
    pub inflow_faces: Vec<Vec<usize>>,
    /// Outflow faces of every cell.
    pub outflow_faces: Vec<Vec<usize>>,
}

impl SweepSchedule {
    /// Build the schedule for the whole mesh.
    pub fn build(mesh: &UnstructuredMesh, omega: [f64; 3]) -> Result<Self, ScheduleError> {
        let graph = DependencyGraph::build(mesh, omega);
        Self::from_graph(&graph, None)
    }

    /// Build the schedule restricted to an ownership mask (per-rank
    /// subdomain sweep under the block-Jacobi global schedule).
    pub fn build_masked(
        mesh: &UnstructuredMesh,
        omega: [f64; 3],
        owned: &[bool],
    ) -> Result<Self, ScheduleError> {
        let graph = DependencyGraph::build_masked(mesh, omega, Some(owned));
        Self::from_graph(&graph, Some(owned))
    }

    /// Build the schedule from an existing dependency graph.
    pub fn from_graph(
        graph: &DependencyGraph,
        owned: Option<&[bool]>,
    ) -> Result<Self, ScheduleError> {
        let n = graph.num_cells();
        let is_owned = |cell: usize| owned.is_none_or(|m| m[cell]);
        let owned_cells = (0..n).filter(|&c| is_owned(c)).count();

        let mut remaining = graph.upwind_count.clone();
        let mut tlevel = vec![usize::MAX; n];
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        let mut scheduled = 0usize;

        // Bucket 0: owned cells with no unsatisfied local dependency.
        let mut current: Vec<usize> = (0..n)
            .filter(|&c| is_owned(c) && remaining[c] == 0)
            .collect();

        while !current.is_empty() {
            let level = buckets.len();
            let mut next = Vec::new();
            for &cell in &current {
                tlevel[cell] = level;
                scheduled += 1;
                for &(down, _) in &graph.downwind[cell] {
                    remaining[down] -= 1;
                    if remaining[down] == 0 {
                        next.push(down);
                    }
                }
            }
            buckets.push(current);
            current = next;
        }

        if scheduled != owned_cells {
            let unscheduled = (0..n)
                .filter(|&c| is_owned(c) && tlevel[c] == usize::MAX)
                .collect();
            return Err(ScheduleError::CyclicDependency { unscheduled });
        }

        Ok(Self {
            omega: graph.omega,
            buckets,
            tlevel,
            inflow_faces: graph.inflow_faces.clone(),
            outflow_faces: graph.outflow_faces.clone(),
        })
    }

    /// Number of wavefront buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total number of scheduled cells.
    pub fn num_cells_scheduled(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Iterate over the cells in sweep order (bucket by bucket).
    pub fn cells_in_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.buckets.iter().flat_map(|b| b.iter().copied())
    }

    /// Schedule statistics.
    pub fn stats(&self) -> ScheduleStats {
        let num_cells = self.num_cells_scheduled();
        let num_buckets = self.num_buckets();
        let min_bucket = self.buckets.iter().map(|b| b.len()).min().unwrap_or(0);
        let max_bucket = self.buckets.iter().map(|b| b.len()).max().unwrap_or(0);
        let mean_bucket = if num_buckets == 0 {
            0.0
        } else {
            num_cells as f64 / num_buckets as f64
        };
        ScheduleStats {
            num_buckets,
            num_cells,
            min_bucket,
            max_bucket,
            mean_bucket,
        }
    }

    /// Check that the schedule is a valid topological order of the
    /// dependency graph: every cell appears exactly once, and no cell is
    /// scheduled before one of its upwind dependencies.  Returns the number
    /// of violations (0 for a valid schedule).
    pub fn validate_against(&self, graph: &DependencyGraph) -> usize {
        let mut violations = 0;
        let mut seen = vec![0usize; graph.num_cells()];
        for &cell in self.buckets.iter().flatten() {
            seen[cell] += 1;
        }
        for &count in &seen {
            if count > 1 {
                violations += count - 1;
            }
        }
        for (up, downs) in graph.downwind.iter().enumerate() {
            for &(down, _) in downs {
                if self.tlevel[up] == usize::MAX || self.tlevel[down] == usize::MAX {
                    continue;
                }
                if self.tlevel[up] >= self.tlevel[down] {
                    violations += 1;
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_mesh::StructuredGrid;

    fn mesh(n: usize) -> UnstructuredMesh {
        UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001)
    }

    #[test]
    fn diagonal_sweep_has_expected_wavefront_count() {
        // On an n³ structured-derived mesh swept along the (+,+,+) diagonal
        // the number of wavefronts is 3(n-1)+1.
        for n in [2usize, 3, 4, 5] {
            let m = mesh(n);
            let s = SweepSchedule::build(&m, [0.55, 0.6, 0.58]).unwrap();
            assert_eq!(s.num_buckets(), 3 * (n - 1) + 1, "n = {n}");
            assert_eq!(s.num_cells_scheduled(), m.num_cells());
        }
    }

    #[test]
    fn all_cells_scheduled_exactly_once_for_every_octant() {
        let m = mesh(4);
        for sx in [-1.0, 1.0] {
            for sy in [-1.0, 1.0] {
                for sz in [-1.0, 1.0] {
                    let omega = [0.48 * sx, 0.62 * sy, 0.62 * sz];
                    let graph = DependencyGraph::build(&m, omega);
                    let s = SweepSchedule::from_graph(&graph, None).unwrap();
                    assert_eq!(s.num_cells_scheduled(), m.num_cells());
                    assert_eq!(s.validate_against(&graph), 0);
                }
            }
        }
    }

    #[test]
    fn tlevels_are_bucket_indices() {
        let m = mesh(3);
        let s = SweepSchedule::build(&m, [0.7, 0.5, 0.5]).unwrap();
        for (level, bucket) in s.buckets.iter().enumerate() {
            for &cell in bucket {
                assert_eq!(s.tlevel[cell], level);
            }
        }
    }

    #[test]
    fn first_bucket_contains_only_seed_cells() {
        let m = mesh(4);
        let omega = [0.5, 0.55, 0.67];
        let graph = DependencyGraph::build(&m, omega);
        let s = SweepSchedule::from_graph(&graph, None).unwrap();
        let mut seeds = graph.seed_cells();
        seeds.sort_unstable();
        let mut first = s.buckets[0].clone();
        first.sort_unstable();
        assert_eq!(first, seeds);
    }

    #[test]
    fn stats_reflect_bucket_shape() {
        let m = mesh(4);
        let s = SweepSchedule::build(&m, [0.5, 0.55, 0.67]).unwrap();
        let stats = s.stats();
        assert_eq!(stats.num_buckets, s.num_buckets());
        assert_eq!(stats.num_cells, 64);
        assert_eq!(stats.min_bucket, 1); // corner cells
        assert!(stats.max_bucket >= stats.min_bucket);
        assert!((stats.mean_bucket - 64.0 / s.num_buckets() as f64).abs() < 1e-12);
    }

    #[test]
    fn masked_schedule_covers_only_owned_cells() {
        let m = mesh(4);
        let grid = *m.origin_grid();
        let owned: Vec<bool> = (0..m.num_cells())
            .map(|id| grid.cell_ijk(id).1 >= 2)
            .collect();
        let owned_count = owned.iter().filter(|&&o| o).count();
        let s = SweepSchedule::build_masked(&m, [0.6, 0.6, 0.53], &owned).unwrap();
        assert_eq!(s.num_cells_scheduled(), owned_count);
        for &cell in s.buckets.iter().flatten() {
            assert!(owned[cell]);
        }
        // The masked sweep has fewer (or equal) wavefronts than the full one.
        let full = SweepSchedule::build(&m, [0.6, 0.6, 0.53]).unwrap();
        assert!(s.num_buckets() <= full.num_buckets());
    }

    #[test]
    fn masked_subdomains_start_immediately() {
        // Block Jacobi: every subdomain can begin work at once — each has a
        // non-empty first bucket regardless of the sweep direction.
        let m = mesh(4);
        let grid = *m.origin_grid();
        for half in 0..2 {
            let owned: Vec<bool> = (0..m.num_cells())
                .map(|id| (grid.cell_ijk(id).0 >= 2) == (half == 1))
                .collect();
            let s = SweepSchedule::build_masked(&m, [0.9, 0.3, 0.4], &owned).unwrap();
            assert!(!s.buckets[0].is_empty());
        }
    }

    #[test]
    fn axis_aligned_direction_sweeps_plane_by_plane() {
        // Untwisted mesh: a pure +x direction is exactly tangential to the
        // y and z faces, so wavefronts are y–z planes of 9 cells.
        let m = UnstructuredMesh::from_structured(&StructuredGrid::cube(3, 1.0), 0.0);
        let s = SweepSchedule::build(&m, [1.0, 0.0, 0.0]).unwrap();
        assert_eq!(s.num_buckets(), 3);
        for bucket in &s.buckets {
            assert_eq!(bucket.len(), 9);
        }
    }

    #[test]
    fn error_display() {
        let e = ScheduleError::CyclicDependency {
            unscheduled: vec![1, 2, 3],
        };
        assert!(e.to_string().contains("3 cells"));
    }
}
