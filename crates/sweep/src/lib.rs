//! # unsnap-sweep
//!
//! Per-angle wavefront sweep scheduling over the unstructured hexahedral
//! mesh.
//!
//! Solving the discrete-ordinates transport equation requires, for every
//! angular direction, a *sweep* of the spatial mesh: a cell can only be
//! solved once all of its upwind neighbours (faces through which particles
//! enter, `Ω · n < 0`) have been solved.  On an unstructured mesh the
//! resulting dependency graph can be different for every direction, so the
//! schedule is computed per angle (§III-A of the paper).
//!
//! The schedule used by UnSNAP computes the *tlevel* of every element — the
//! length of the longest upwind dependency chain, following Pautz — and
//! places cells with the same tlevel into a **bucket**.  Buckets must be
//! processed in order, but every cell inside a bucket is independent, and
//! that is where the on-node parallelism of the paper's "fat node" schedule
//! comes from (§III-B).
//!
//! Provided modules:
//!
//! * [`upwind`] — geometric upwind/downwind classification of cell faces
//!   for a given direction ([`FaceClass`], [`face_outward_normal`]);
//! * [`graph`] — the per-angle dependency graph ([`DependencyGraph`]:
//!   incoming/outgoing faces per cell);
//! * [`schedule`] — bucketed wavefront schedule construction (Kahn's
//!   algorithm over the dependency counters), cycle detection
//!   ([`ScheduleError`]), and schedule statistics ([`ScheduleStats`]);
//! * [`scheme`] — the concurrency-scheme descriptors
//!   ([`ConcurrencyScheme`]: [`LoopOrder`] × [`ThreadedLoops`]) that name
//!   the six parallel variants benchmarked in Figures 3 and 4 of the
//!   paper.
//!
//! Consumers: the single-domain sweep driver in `unsnap-core` builds one
//! [`SweepSchedule`] per angle with [`SweepSchedule::build`], while the
//! distributed block-Jacobi driver in `unsnap-comm` builds per-rank
//! schedules *masked* to each rank's subdomain with
//! [`SweepSchedule::build_masked`] — see the repository's
//! `docs/ARCHITECTURE.md` for the full data flow.
//!
//! ## Example
//!
//! ```
//! use unsnap_mesh::{StructuredGrid, UnstructuredMesh};
//! use unsnap_sweep::schedule::SweepSchedule;
//!
//! let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(4, 1.0), 0.001);
//! let omega = [0.5, 0.3, 0.8];
//! let schedule = SweepSchedule::build(&mesh, omega).unwrap();
//! // Every cell appears exactly once across the buckets.
//! assert_eq!(schedule.num_cells_scheduled(), mesh.num_cells());
//! // A structured-derived cube swept along a diagonal has 3(n-1)+1 wavefronts.
//! assert_eq!(schedule.num_buckets(), 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod schedule;
pub mod scheme;
pub mod upwind;

pub use graph::DependencyGraph;
pub use schedule::{ScheduleError, ScheduleStats, SweepSchedule};
pub use scheme::{ConcurrencyScheme, LoopOrder, ThreadedLoops};
pub use upwind::{face_outward_normal, FaceClass};
