//! Geometric upwind/downwind classification of cell faces.
//!
//! The sweep dependency between two cells is set by the sign of `Ω · n` on
//! their shared face, where `n` is the outward normal of the face as seen
//! from the cell being classified.  For the mildly twisted UnSNAP meshes
//! every face is planar to within the twist angle, so the classification
//! uses the average face normal computed from the four face corners.

use unsnap_mesh::UnstructuredMesh;

/// Classification of a face with respect to a sweep direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaceClass {
    /// Particles enter the cell through this face (`Ω · n < 0`): the
    /// neighbour on the other side is an upwind dependency.
    Inflow,
    /// Particles leave the cell through this face (`Ω · n > 0`): the
    /// neighbour is downwind and depends on this cell.
    Outflow,
    /// The direction is (numerically) tangential to the face; neither side
    /// depends on the other through it.
    Tangential,
}

/// Local corner indices (in the `c = i + 2j + 4k` ordering) of each face of
/// a hexahedron, listed as the quadrilateral `(a, b, c, d)` where `a→b` and
/// `a→c` are the two in-face edge directions.
const FACE_CORNERS: [[usize; 4]; 6] = [
    [0, 2, 4, 6], // x-
    [1, 3, 5, 7], // x+
    [0, 1, 4, 5], // y-
    [2, 3, 6, 7], // y+
    [0, 1, 2, 3], // z-
    [4, 5, 6, 7], // z+
];

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn add(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn scale(a: [f64; 3], s: f64) -> [f64; 3] {
    [a[0] * s, a[1] * s, a[2] * s]
}

fn norm(a: [f64; 3]) -> f64 {
    dot(a, a).sqrt()
}

/// Outward unit normal of `(cell, face)` computed from the face's corner
/// vertices (the mean-tangent cross product, oriented away from the cell
/// centroid).
pub fn face_outward_normal(mesh: &UnstructuredMesh, cell: usize, face: usize) -> [f64; 3] {
    let corners = mesh.cell_corners(cell);
    let [a, b, c, d] = FACE_CORNERS[face];
    let (pa, pb, pc, pd) = (corners[a], corners[b], corners[c], corners[d]);
    // Mean tangents of the (possibly non-planar) quadrilateral patch.
    let t1 = sub(add(pb, pd), add(pa, pc));
    let t2 = sub(add(pc, pd), add(pa, pb));
    let mut n = cross(t1, t2);
    let len = norm(n);
    if len > 0.0 {
        n = scale(n, 1.0 / len);
    }
    // Orient outward: away from the cell centroid.
    let centroid = mesh.cell_centroid(cell);
    let face_centre = scale(add(add(pa, pb), add(pc, pd)), 0.25);
    if dot(n, sub(face_centre, centroid)) < 0.0 {
        n = scale(n, -1.0);
    }
    n
}

/// Classify a face of a cell for sweep direction `omega`.
///
/// `tangent_tolerance` guards against treating a numerically grazing
/// direction as a dependency; the UnSNAP quadrature never produces
/// direction cosines smaller than ~1e-2 so the default of `1e-12` only
/// matters for axis-aligned synthetic directions in tests.
pub fn classify_face(
    mesh: &UnstructuredMesh,
    cell: usize,
    face: usize,
    omega: [f64; 3],
    tangent_tolerance: f64,
) -> FaceClass {
    let n = face_outward_normal(mesh, cell, face);
    let dn = dot(n, omega);
    if dn > tangent_tolerance {
        FaceClass::Outflow
    } else if dn < -tangent_tolerance {
        FaceClass::Inflow
    } else {
        FaceClass::Tangential
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_mesh::StructuredGrid;

    fn mesh(n: usize, twist: f64) -> UnstructuredMesh {
        UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), twist)
    }

    #[test]
    fn untwisted_normals_are_axis_aligned() {
        let m = mesh(2, 0.0);
        let expected = [
            [-1.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, -1.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, -1.0],
            [0.0, 0.0, 1.0],
        ];
        for cell in 0..m.num_cells() {
            for face in 0..6 {
                let n = face_outward_normal(&m, cell, face);
                for d in 0..3 {
                    assert!(
                        (n[d] - expected[face][d]).abs() < 1e-12,
                        "cell {cell} face {face}: {n:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn twisted_normals_remain_close_to_axes_and_unit_length() {
        let m = mesh(4, 0.001);
        for cell in 0..m.num_cells() {
            for face in 0..6 {
                let n = face_outward_normal(&m, cell, face);
                assert!((norm(n) - 1.0).abs() < 1e-12);
                let axis = face / 2;
                let sign = if face % 2 == 0 { -1.0 } else { 1.0 };
                assert!(
                    (n[axis] * sign) > 0.99,
                    "twist should barely tilt the normals"
                );
            }
        }
    }

    #[test]
    fn opposite_faces_of_adjacent_cells_have_opposite_normals() {
        let m = mesh(3, 0.001);
        for cell in 0..m.num_cells() {
            for face in 0..6 {
                if let unsnap_mesh::NeighborRef::Interior {
                    cell: other,
                    face: of,
                } = m.neighbor(cell, face)
                {
                    let n1 = face_outward_normal(&m, cell, face);
                    let n2 = face_outward_normal(&m, other, of);
                    assert!(dot(n1, n2) < -0.999, "shared face normals must oppose");
                }
            }
        }
    }

    #[test]
    fn classification_matches_direction_signs() {
        let m = mesh(2, 0.0);
        let omega = [0.7, 0.5, 0.5];
        assert_eq!(classify_face(&m, 0, 0, omega, 1e-12), FaceClass::Inflow);
        assert_eq!(classify_face(&m, 0, 1, omega, 1e-12), FaceClass::Outflow);
        assert_eq!(classify_face(&m, 0, 2, omega, 1e-12), FaceClass::Inflow);
        assert_eq!(classify_face(&m, 0, 3, omega, 1e-12), FaceClass::Outflow);
        let down = [-0.7, -0.5, -0.5];
        assert_eq!(classify_face(&m, 0, 0, down, 1e-12), FaceClass::Outflow);
    }

    #[test]
    fn tangential_directions_are_detected() {
        let m = mesh(2, 0.0);
        // Direction exactly in the y–z plane is tangential to x faces.
        let omega = [0.0, 0.6, 0.8];
        assert_eq!(classify_face(&m, 0, 0, omega, 1e-12), FaceClass::Tangential);
        assert_eq!(classify_face(&m, 0, 1, omega, 1e-12), FaceClass::Tangential);
        assert_eq!(classify_face(&m, 0, 3, omega, 1e-12), FaceClass::Outflow);
    }
}
