//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Provides the `Mutex` API shape the workspace uses (`lock` without a
//! poison `Result`, `into_inner`).  Poisoning is handled the way
//! parking_lot does: it doesn't — a panic while holding the lock simply
//! propagates on the next `lock`.

/// A mutex with parking_lot's non-poisoning `lock` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a mutex around `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
