//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The real `serde_derive` generates trait implementations; the stand-in's
//! `Serialize`/`Deserialize` traits carry blanket implementations instead,
//! so the derives here only need to exist — they expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
