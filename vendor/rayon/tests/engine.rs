//! Property and stress tests for the worker-pool parallel-iterator engine.
//!
//! These pin the contracts the workspace's cross-thread-count determinism
//! suite relies on: order-preserving `collect` at every pool width,
//! bounded `map_init` state creation, earliest-index `try_for_each`
//! errors, and panic propagation (rather than a hang or a dead worker).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

fn pool_of(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn collect_preserves_input_order(len in 0usize..400, threads in 1usize..=8) {
        let pool = pool_of(threads);
        let out: Vec<usize> = pool.install(|| {
            (0..len).into_par_iter().map(|i| i.wrapping_mul(7)).collect()
        });
        let expected: Vec<usize> = (0..len).map(|i| i.wrapping_mul(7)).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn flatten_preserves_input_order(lens in collection::vec(0usize..9, 0..24), threads in 1usize..=8) {
        let pool = pool_of(threads);
        let out: Vec<usize> = pool.install(|| {
            lens.clone()
                .into_par_iter()
                .map(|len| (0..len).collect::<Vec<_>>())
                .flatten()
                .collect()
        });
        let expected: Vec<usize> = lens.iter().flat_map(|&len| 0..len).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn map_init_state_count_is_bounded_by_width(len in 1usize..300, threads in 1usize..=8) {
        let pool = pool_of(threads);
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = pool.install(|| {
            (0..len)
                .into_par_iter()
                .map_init(
                    || inits.fetch_add(1, Ordering::Relaxed),
                    |_, x| x,
                )
                .collect()
        });
        prop_assert_eq!(out, (0..len).collect::<Vec<_>>());
        let created = inits.load(Ordering::Relaxed);
        prop_assert!(created >= 1);
        prop_assert!(
            created <= pool.current_num_threads().min(len),
            "{} states, width {}, {} items",
            created,
            pool.current_num_threads(),
            len
        );
    }

    #[test]
    fn try_for_each_reports_the_earliest_error(
        flags in collection::vec(0u32..6, 1..200),
        threads in 1usize..=8,
    ) {
        // An item "fails" when its flag is 0; the error carries the index.
        let pool = pool_of(threads);
        let indexed: Vec<(usize, u32)> = flags.iter().copied().enumerate().collect();
        let result: Result<(), usize> = pool.install(|| {
            indexed
                .into_par_iter()
                .try_for_each(|(index, flag)| if flag == 0 { Err(index) } else { Ok(()) })
        });
        let expected = flags.iter().position(|&flag| flag == 0);
        match expected {
            None => prop_assert_eq!(result, Ok(())),
            Some(first) => prop_assert_eq!(result, Err(first)),
        }
    }

    #[test]
    fn sums_are_identical_at_every_width(values in collection::vec(-1.0f64..1.0, 0..200)) {
        // Floating-point reduction must not depend on the thread count.
        let mut totals = Vec::new();
        for threads in [1usize, 2, 5, 8] {
            let pool = pool_of(threads);
            let total: f64 = pool.install(|| values.clone().into_par_iter().sum());
            totals.push(total.to_bits());
        }
        for pair in totals.windows(2) {
            prop_assert_eq!(pair[0], pair[1]);
        }
    }
}

#[test]
fn try_for_each_cancels_work_after_an_error() {
    // With the error at index 0, items far behind it should mostly be
    // skipped; all we *guarantee* is the earliest error and completion.
    let pool = pool_of(4);
    let visited = AtomicUsize::new(0);
    let result: Result<(), usize> = pool.install(|| {
        (0..100_000usize).into_par_iter().try_for_each(|i| {
            visited.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                // Give other chunks a moment to observe the cancellation.
                std::thread::sleep(std::time::Duration::from_millis(1));
                Err(i)
            } else {
                Ok(())
            }
        })
    });
    assert_eq!(result, Err(0));
    assert!(visited.load(Ordering::Relaxed) <= 100_000);
}

#[test]
fn closure_panic_propagates_to_the_caller() {
    let pool = pool_of(4);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            (0..128usize).into_par_iter().for_each(|i| {
                if i == 37 {
                    panic!("kernel exploded at {i}");
                }
            })
        })
    }));
    let payload = result.expect_err("panic must cross the pool boundary");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("kernel exploded at 37"),
        "unexpected payload: {message}"
    );

    // The pool survives a worker panic: workers catch and keep serving.
    let doubled: Vec<usize> =
        pool.install(|| (0..16usize).into_par_iter().map(|x| 2 * x).collect());
    assert_eq!(doubled, (0..16).map(|x| 2 * x).collect::<Vec<_>>());
}

#[test]
fn earliest_panic_wins_when_several_chunks_panic() {
    let pool = pool_of(8);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .for_each(|i| panic!("chunk payload {}", i / 8))
        })
    }));
    let payload = result.expect_err("panic must propagate");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert_eq!(message, "chunk payload 0");
}

#[test]
fn map_init_threads_state_through_a_chunk_in_order() {
    // Within one chunk the state sees items in index order; outputs glued
    // across chunks reproduce the input order.
    let pool = pool_of(3);
    let out: Vec<(usize, usize)> = pool.install(|| {
        (0..40usize)
            .into_par_iter()
            .map_init(
                || 0usize,
                |seen, x| {
                    *seen += 1;
                    (x, *seen)
                },
            )
            .collect()
    });
    assert_eq!(out.len(), 40);
    for (k, (x, seen)) in out.iter().enumerate() {
        assert_eq!(*x, k);
        assert!(*seen >= 1);
    }
    // Per-chunk counters restart at 1 and increase by one.
    let mut previous = 0usize;
    for (_, seen) in out {
        assert!(seen == previous + 1 || seen == 1);
        previous = seen;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stealing mode with adversarial bucket-shaped inputs: lots of tiny
    /// (often 1-element) work lists, the exact shape of the narrow ends
    /// of a wavefront schedule.  Order must be preserved at every width.
    #[test]
    fn stealing_collect_preserves_order_on_adversarial_sizes(
        lens in collection::vec(0usize..4, 0..64),
        threads in 1usize..=8,
    ) {
        let pool = pool_of(threads);
        for len in lens {
            let out: Vec<usize> = pool.install(|| {
                (0..len)
                    .into_par_iter()
                    .with_stealing(true)
                    .map(|i| i.wrapping_mul(13))
                    .collect()
            });
            let expected: Vec<usize> = (0..len).map(|i| i.wrapping_mul(13)).collect();
            prop_assert_eq!(out, expected);
        }
    }

    /// Stealing and static modes agree item for item, including under
    /// heavy imbalance (item cost grows with the index, so back halves
    /// are the expensive ones and get stolen).
    #[test]
    fn stealing_matches_static_under_imbalance(len in 1usize..300, threads in 2usize..=8) {
        let pool = pool_of(threads);
        let work = |i: usize| -> usize {
            let mut acc = i;
            for _ in 0..(i % 17) * 50 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let stolen: Vec<usize> = pool.install(|| {
            (0..len).into_par_iter().with_stealing(true).map(work).collect()
        });
        let fixed: Vec<usize> = pool.install(|| {
            (0..len).into_par_iter().map(work).collect()
        });
        prop_assert_eq!(stolen, fixed);
    }

    /// The earliest-index error rule survives stealing: whichever worker
    /// hits an error, the error reported is the one at the lowest input
    /// index.
    #[test]
    fn stealing_try_for_each_reports_the_earliest_error(
        flags in collection::vec(0u32..6, 1..200),
        threads in 1usize..=8,
    ) {
        let pool = pool_of(threads);
        let indexed: Vec<(usize, u32)> = flags.iter().copied().enumerate().collect();
        let result: Result<(), usize> = pool.install(|| {
            indexed
                .into_par_iter()
                .with_stealing(true)
                .try_for_each(|(index, flag)| if flag == 0 { Err(index) } else { Ok(()) })
        });
        let expected = flags.iter().position(|&flag| flag == 0);
        match expected {
            None => prop_assert_eq!(result, Ok(())),
            Some(first) => prop_assert_eq!(result, Err(first)),
        }
    }
}

#[test]
fn stealing_visits_every_index_exactly_once() {
    // Each index increments its own counter; stealing must neither skip
    // nor duplicate work, even across many repetitions.
    let pool = pool_of(8);
    for _ in 0..50 {
        let n = 97usize;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            (0..n).into_par_iter().with_stealing(true).for_each(|i| {
                counters[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        for (i, counter) in counters.iter().enumerate() {
            assert_eq!(counter.load(Ordering::Relaxed), 1, "index {i}");
        }
    }
}

#[test]
fn stealing_panic_propagates_and_the_pool_survives() {
    let pool = pool_of(4);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .with_stealing(true)
                .for_each(|i| {
                    if i == 23 {
                        panic!("stolen kernel exploded at {i}");
                    }
                })
        })
    }));
    let payload = result.expect_err("panic must cross the pool boundary");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("stolen kernel exploded at 23"),
        "unexpected payload: {message}"
    );

    // The pool keeps serving both execution modes after the panic.
    let doubled: Vec<usize> = pool.install(|| {
        (0..16usize)
            .into_par_iter()
            .with_stealing(true)
            .map(|x| 2 * x)
            .collect()
    });
    assert_eq!(doubled, (0..16).map(|x| 2 * x).collect::<Vec<_>>());
    let tripled: Vec<usize> =
        pool.install(|| (0..16usize).into_par_iter().map(|x| 3 * x).collect());
    assert_eq!(tripled, (0..16).map(|x| 3 * x).collect::<Vec<_>>());
}

#[test]
fn stealing_map_init_creates_at_most_one_state_per_chunk_job() {
    let pool = pool_of(4);
    let inits = AtomicUsize::new(0);
    let out: Vec<usize> = pool.install(|| {
        (0..200usize)
            .into_par_iter()
            .with_stealing(true)
            .map_init(|| inits.fetch_add(1, Ordering::Relaxed), |_, x| x)
            .collect()
    });
    assert_eq!(out, (0..200).collect::<Vec<_>>());
    let created = inits.load(Ordering::Relaxed);
    assert!(created >= 1);
    assert!(
        created <= pool.current_num_threads(),
        "{created} states for {} workers",
        pool.current_num_threads()
    );
}

#[test]
fn many_concurrent_installs_share_the_pool() {
    let pool = std::sync::Arc::new(pool_of(4));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let pool = std::sync::Arc::clone(&pool);
            std::thread::spawn(move || {
                let out: Vec<usize> =
                    pool.install(|| (0..200usize).into_par_iter().map(|i| i + t).collect());
                assert_eq!(out, (0..200).map(|i| i + t).collect::<Vec<_>>());
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
}
