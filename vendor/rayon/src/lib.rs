//! Offline, genuinely multi-threaded stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate mirrors
//! the slice of rayon's API the workspace uses — `par_iter`,
//! `into_par_iter`, `par_iter_mut`, `map`, `map_init`, `flatten`,
//! `collect`, `for_each`, `try_for_each`, `try_for_each_init`, `sum`, and
//! the [`ThreadPool`]/[`ThreadPoolBuilder`] pair — and executes it on a
//! real shared worker pool (the private `pool` module).
//!
//! # Execution model and determinism
//!
//! Unlike real rayon's work-stealing deques, this engine trades dynamic
//! load balancing for *reproducibility*:
//!
//! * the driving item sequence is materialised up front and split into at
//!   most `width` contiguous, **index-ordered chunks** (`width` = the
//!   pool's thread count);
//! * chunks execute concurrently on the worker threads, and their outputs
//!   are reassembled **in input order**, so [`ParIter::collect`] returns
//!   exactly what a sequential run would;
//! * order-sensitive reductions ([`ParIter::sum`], `collect` into
//!   `Result`) fold the already-computed per-item results sequentially in
//!   input order — floating-point reductions are therefore bit-for-bit
//!   identical at *every* thread count, which is the property the
//!   workspace's cross-thread-count determinism suite pins down;
//! * [`ParIter::map_init`] creates one scratch state per chunk, and there
//!   is at most one chunk per worker, so at most `width` states exist;
//! * [`ParIter::try_for_each`] returns the error of the **earliest**
//!   input index that failed (strictly stronger than rayon's "some
//!   error"), and items at later indices than a known error are skipped;
//! * a panic inside a worker closure is caught, forwarded, and re-thrown
//!   on the calling thread once every in-flight chunk has drained — never
//!   a hang, never a dead worker thread.
//!
//! # Work-stealing mode
//!
//! [`ParIter::with_stealing`] opts a single parallel call into a
//! work-stealing execution mode for imbalanced workloads (typically the
//! small wavefront buckets of a transport sweep, where a static split
//! leaves most workers idle behind one slow chunk).  The input is still
//! decomposed into the same index-ordered chunks, but each chunk becomes
//! a half-open index *range* behind an atomic: the owning worker claims
//! indices off the front one at a time, and a worker whose own range has
//! drained steals the back half of another's range (or its single
//! remaining item).  Determinism survives by construction:
//!
//! * every index is claimed by **exactly one** worker (the claim is an
//!   atomic compare-and-swap on the range bounds), and its output is
//!   written to the slot of that index, so reassembly is in input order
//!   no matter which thread computed what;
//! * reductions and error selection reuse the in-order rules above, so
//!   `sum`, `collect` and the earliest-error guarantee of
//!   [`ParIter::try_for_each`] are unchanged;
//! * only the *association* of items to `map_init` scratch states varies
//!   between runs — callers whose scratch is a pure cache (bit-identical
//!   values recomputed on miss) therefore still observe bit-for-bit
//!   identical results at every thread count.
//!
//! Parallel calls made on a thread that is itself a worker of the target
//! pool run inline (sequentially) instead of enqueueing, so nested
//! parallelism cannot deadlock.
//!
//! The [`NUM_THREADS_ENV`] environment variable (`RAYON_NUM_THREADS`)
//! overrides the width of every pool — the CI knob that forces the whole
//! test suite onto 1, 2 and 8 threads.

mod pool;

pub use pool::{ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder, NUM_THREADS_ENV};

/// The effective width of the pool a parallel call issued on this thread
/// would target: the innermost [`ThreadPool::install`], or the global
/// pool (rayon `current_num_threads`).
pub fn current_num_threads() -> usize {
    pool::current_registry().width()
}

/// A parallel iterator over an in-order, materialised item sequence.
///
/// Produced by [`IntoParallelIterator::into_par_iter`],
/// [`IntoParallelRefIterator::par_iter`] and
/// [`IntoParallelRefIterator::par_iter_mut`]; consumed by the combinators
/// below.  `map`/`map_init`/`for_each`/`try_for_each` fan their closure
/// out across the current pool (the innermost [`ThreadPool::install`], or
/// the global pool); `flatten`, `collect` and `sum` are in-order
/// reassembly steps and run on the calling thread.
pub struct ParIter<T: Send> {
    items: Vec<T>,
    stealing: bool,
}

impl<T: Send> ParIter<T> {
    fn from_vec(items: Vec<T>) -> Self {
        Self {
            items,
            stealing: false,
        }
    }

    /// Opt this iterator into the work-stealing execution mode (see the
    /// crate docs) — an extension over rayon, whose iterators always
    /// steal.  The flag survives [`ParIter::flatten`] and applies to the
    /// next fan-out terminal (`map`, `map_init`, `for_each`,
    /// `try_for_each`, `try_for_each_init`).
    pub fn with_stealing(mut self, stealing: bool) -> Self {
        self.stealing = stealing;
        self
    }

    /// Map every item on the pool (rayon `ParallelIterator::map`).
    ///
    /// Outputs are reassembled in input order.
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let stealing = self.stealing;
        ParIter {
            items: run_map_init(self.items, stealing, || (), move |(), item| f(item)),
            stealing,
        }
    }

    /// Map with per-worker scratch state (rayon `map_init`): `init` runs
    /// once per chunk — hence at most once per worker — and the state is
    /// threaded through that chunk's items in index order.  In stealing
    /// mode the state is still created once per chunk job, but a worker
    /// that steals applies *its* state to the stolen items.
    pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> ParIter<U>
    where
        U: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        let stealing = self.stealing;
        ParIter {
            items: run_map_init(self.items, stealing, init, f),
            stealing,
        }
    }

    /// Flatten nested iterables (rayon `flatten`), preserving order.
    pub fn flatten(self) -> ParIter<<T as IntoIterator>::Item>
    where
        T: IntoIterator,
        <T as IntoIterator>::Item: Send,
    {
        ParIter {
            items: self.items.into_iter().flatten().collect(),
            stealing: self.stealing,
        }
    }

    /// Collect into any `FromIterator` target, including
    /// `Result<Vec<_>, E>` (rayon `collect`).  Items are consumed in
    /// input order, so a `Result` target reports the earliest error.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Apply `f` to every item on the pool (rayon `for_each`).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_map_init(self.items, self.stealing, || (), move |(), item| f(item));
    }

    /// Fallible `for_each` (rayon `try_for_each`): the error at the
    /// **earliest** input index wins, and items at later indices than a
    /// known error are cancelled.
    pub fn try_for_each<E, F>(self, f: F) -> Result<(), E>
    where
        E: Send,
        F: Fn(T) -> Result<(), E> + Sync,
    {
        run_try_for_each_init(self.items, self.stealing, || (), move |(), item| f(item))
    }

    /// [`ParIter::try_for_each`] with per-worker scratch state created as
    /// in [`ParIter::map_init`] (rayon `try_for_each_init`).
    pub fn try_for_each_init<S, E, INIT, F>(self, init: INIT, f: F) -> Result<(), E>
    where
        E: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> Result<(), E> + Sync,
    {
        run_try_for_each_init(self.items, self.stealing, init, f)
    }

    /// Sum the items (rayon `sum`).
    ///
    /// Deliberately folded sequentially in input order: a chunked
    /// tree-reduction would make floating-point sums depend on the thread
    /// count, breaking the crate's bit-for-bit determinism guarantee.
    /// The parallel work belongs in the `map` that produced the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Split `items` into at most `width` contiguous chunks whose
/// concatenation is the original sequence.  Chunk sizes differ by at most
/// one, with the longer chunks first — a pure function of `(len, width)`,
/// so the decomposition (and thus `map_init` state lineage) is
/// reproducible.
fn split_in_order<T>(mut items: Vec<T>, width: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let w = width.min(n).max(1);
    let base = n / w;
    let extra = n % w;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(w);
    // Peel chunks off the back so each split is O(chunk).
    for index in (1..w).rev() {
        let start = index * base + extra.min(index);
        chunks.push(items.split_off(start));
    }
    chunks.push(items);
    chunks.reverse();
    chunks
}

/// The engine behind `map`/`map_init`/`for_each`: run `f` over every item
/// with per-chunk state, returning outputs in input order.
fn parallel_map_init<T, S, U, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let registry = pool::current_registry();
    if n == 1 || registry.width() <= 1 || registry.on_worker_thread() {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    let chunks = split_in_order(items, registry.width());
    let mut slots: Vec<Option<Vec<U>>> = Vec::new();
    slots.resize_with(chunks.len(), || None);
    {
        let init = &init;
        let f = &f;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .into_iter()
            .zip(slots.iter_mut())
            .map(|(chunk, slot)| {
                Box::new(move || {
                    let mut state = init();
                    *slot = Some(chunk.into_iter().map(|item| f(&mut state, item)).collect());
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        registry.run_scoped(jobs);
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(slot.expect("completed chunk left its result slot empty"));
    }
    out
}

/// The engine behind `try_for_each`/`try_for_each_init`: first-error-wins
/// by input index, with work at later indices cancelled once an error is
/// known.
fn parallel_try_for_each_init<T, S, E, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Result<(), E>
where
    T: Send,
    E: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> Result<(), E> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(());
    }
    let registry = pool::current_registry();
    if n == 1 || registry.width() <= 1 || registry.on_worker_thread() {
        let mut state = init();
        return items.into_iter().try_for_each(|item| f(&mut state, item));
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    // Global input index of the earliest known error; `usize::MAX` while
    // everything has succeeded.  Chunks poll it to cancel work that an
    // earlier error has already doomed, and can never be cancelled by an
    // error at a *later* index — which is what makes the returned error
    // deterministic.
    let earliest = AtomicUsize::new(usize::MAX);
    let chunks = split_in_order(items, registry.width());
    let mut slots: Vec<Option<(usize, E)>> = Vec::new();
    slots.resize_with(chunks.len(), || None);
    {
        let init = &init;
        let f = &f;
        let earliest = &earliest;
        let mut offset = 0usize;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .into_iter()
            .zip(slots.iter_mut())
            .map(|(chunk, slot)| {
                let start = offset;
                offset += chunk.len();
                Box::new(move || {
                    let mut state = init();
                    for (k, item) in chunk.into_iter().enumerate() {
                        let index = start + k;
                        if earliest.load(Ordering::Relaxed) < index {
                            return;
                        }
                        if let Err(error) = f(&mut state, item) {
                            earliest.fetch_min(index, Ordering::Relaxed);
                            *slot = Some((index, error));
                            return;
                        }
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        registry.run_scoped(jobs);
    }
    match slots.into_iter().flatten().min_by_key(|(index, _)| *index) {
        Some((_, error)) => Err(error),
        None => Ok(()),
    }
}

/// Dispatch between the static-chunk and work-stealing map engines.
fn run_map_init<T, S, U, INIT, F>(items: Vec<T>, stealing: bool, init: INIT, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    if stealing {
        parallel_map_init_stealing(items, init, f)
    } else {
        parallel_map_init(items, init, f)
    }
}

/// Dispatch between the static-chunk and work-stealing `try_for_each`
/// engines.
fn run_try_for_each_init<T, S, E, INIT, F>(
    items: Vec<T>,
    stealing: bool,
    init: INIT,
    f: F,
) -> Result<(), E>
where
    T: Send,
    E: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> Result<(), E> + Sync,
{
    if stealing {
        parallel_try_for_each_init_stealing(items, init, f)
    } else {
        parallel_try_for_each_init(items, init, f)
    }
}

/// A single-owner cell of the stealing engine's input/output arrays.
///
/// The range claim protocol (see [`claim_front`]/[`steal_back_half`])
/// hands every index to exactly one worker, so the unsynchronised
/// interior access at a claimed index is exclusive by construction.
struct StealSlot<V>(std::cell::UnsafeCell<Option<V>>);

// SAFETY: a slot is only accessed at an index the claim protocol handed
// to exactly one worker; `V: Send` lets the value cross the worker
// boundary with the claim.
unsafe impl<V: Send> Sync for StealSlot<V> {}

impl<V> StealSlot<V> {
    fn filled(value: V) -> Self {
        Self(std::cell::UnsafeCell::new(Some(value)))
    }

    fn empty() -> Self {
        Self(std::cell::UnsafeCell::new(None))
    }

    /// Move the value out.
    ///
    /// # Safety
    /// The caller must hold the exclusive claim on this slot's index.
    unsafe fn take(&self) -> Option<V> {
        (*self.0.get()).take()
    }

    /// Store a value.
    ///
    /// # Safety
    /// The caller must hold the exclusive claim on this slot's index.
    unsafe fn put(&self, value: V) {
        *self.0.get() = Some(value);
    }

    fn into_inner(self) -> Option<V> {
        self.0.into_inner()
    }
}

/// Pack a half-open index range into the stealing engine's atomic word.
fn pack_range(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

/// Inverse of [`pack_range`].
fn unpack_range(packed: u64) -> (u32, u32) {
    ((packed >> 32) as u32, packed as u32)
}

/// The stealing decomposition: the same `(len, width)`-pure split as
/// [`split_in_order`] (at most `width` contiguous ranges, sizes differing
/// by at most one, longer ranges first), but as atomically-mutable
/// half-open ranges instead of materialised chunks.
fn steal_ranges(n: usize, width: usize) -> Vec<std::sync::atomic::AtomicU64> {
    use std::sync::atomic::AtomicU64;
    let w = width.min(n).max(1);
    let base = n / w;
    let extra = n % w;
    let mut ranges = Vec::with_capacity(w);
    let mut start = 0usize;
    for index in 0..w {
        let len = base + usize::from(index < extra);
        ranges.push(AtomicU64::new(pack_range(
            start as u32,
            (start + len) as u32,
        )));
        start += len;
    }
    ranges
}

/// Claim the front index of a range; `None` when it has drained.
fn claim_front(range: &std::sync::atomic::AtomicU64) -> Option<usize> {
    use std::sync::atomic::Ordering;
    let mut current = range.load(Ordering::Acquire);
    loop {
        let (start, end) = unpack_range(current);
        if start >= end {
            return None;
        }
        match range.compare_exchange_weak(
            current,
            pack_range(start + 1, end),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some(start as usize),
            Err(now) => current = now,
        }
    }
}

/// Steal the back half of a victim's range (or its single remaining
/// item), returning the half-open index range now owned exclusively by
/// the thief; `None` when the victim has drained.
fn steal_back_half(range: &std::sync::atomic::AtomicU64) -> Option<(usize, usize)> {
    use std::sync::atomic::Ordering;
    let mut current = range.load(Ordering::Acquire);
    loop {
        let (start, end) = unpack_range(current);
        if start >= end {
            return None;
        }
        // The victim keeps the front ceil-half and the thief takes
        // `[mid, end)`; a single remaining item is taken outright.
        let mid = if end - start == 1 {
            start
        } else {
            start + (end - start).div_ceil(2)
        };
        match range.compare_exchange_weak(
            current,
            pack_range(start, mid),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Some((mid as usize, end as usize)),
            Err(now) => current = now,
        }
    }
}

/// One stealing worker's schedule: drain the own range off the front,
/// then cycle over the other ranges stealing back halves until a full
/// pass finds nothing left anywhere.
fn drain_with_stealing(
    ranges: &[std::sync::atomic::AtomicU64],
    me: usize,
    run: &mut dyn FnMut(usize),
) {
    while let Some(index) = claim_front(&ranges[me]) {
        run(index);
    }
    let w = ranges.len();
    loop {
        let mut stole = false;
        for k in 1..w {
            if let Some((start, end)) = steal_back_half(&ranges[(me + k) % w]) {
                stole = true;
                for index in start..end {
                    run(index);
                }
            }
        }
        if !stole {
            return;
        }
    }
}

/// The work-stealing engine behind `map`/`map_init`/`for_each` when
/// [`ParIter::with_stealing`] is set.  Outputs land in per-index slots,
/// so reassembly is in input order regardless of which worker computed
/// which item.
fn parallel_map_init_stealing<T, S, U, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let registry = pool::current_registry();
    if n == 1 || registry.width() <= 1 || registry.on_worker_thread() {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }
    if n > u32::MAX as usize {
        // The packed ranges index with u32; fall back to static chunks
        // rather than truncate (no real sweep bucket gets this large).
        return parallel_map_init(items, init, f);
    }

    let input: Vec<StealSlot<T>> = items.into_iter().map(StealSlot::filled).collect();
    let output: Vec<StealSlot<U>> = (0..n).map(|_| StealSlot::<U>::empty()).collect();
    let ranges = steal_ranges(n, registry.width());
    {
        let input = &input;
        let output = &output;
        let ranges = &ranges[..];
        let init = &init;
        let f = &f;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..ranges.len())
            .map(|me| {
                Box::new(move || {
                    let mut state = init();
                    drain_with_stealing(ranges, me, &mut |index| {
                        // SAFETY: `index` was claimed exactly once by
                        // this worker (range CAS protocol).
                        let item = unsafe { input[index].take() }
                            .expect("claimed index was already consumed");
                        let value = f(&mut state, item);
                        unsafe { output[index].put(value) };
                    });
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        registry.run_scoped(jobs);
    }
    output
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("drained stealing scope left an output slot empty")
        })
        .collect()
}

/// The work-stealing engine behind `try_for_each`/`try_for_each_init`
/// when [`ParIter::with_stealing`] is set: same earliest-error-wins and
/// cancellation rules as the static engine.
fn parallel_try_for_each_init_stealing<T, S, E, INIT, F>(
    items: Vec<T>,
    init: INIT,
    f: F,
) -> Result<(), E>
where
    T: Send,
    E: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> Result<(), E> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(());
    }
    let registry = pool::current_registry();
    if n == 1 || registry.width() <= 1 || registry.on_worker_thread() {
        let mut state = init();
        return items.into_iter().try_for_each(|item| f(&mut state, item));
    }
    if n > u32::MAX as usize {
        return parallel_try_for_each_init(items, init, f);
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    // Same deterministic error rule as the static engine: the earliest
    // input index wins, and later-indexed work is cancelled once an
    // earlier error is known.
    let earliest = AtomicUsize::new(usize::MAX);
    let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    let input: Vec<StealSlot<T>> = items.into_iter().map(StealSlot::filled).collect();
    let ranges = steal_ranges(n, registry.width());
    {
        let input = &input;
        let ranges = &ranges[..];
        let init = &init;
        let f = &f;
        let earliest = &earliest;
        let errors = &errors;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..ranges.len())
            .map(|me| {
                Box::new(move || {
                    let mut state = init();
                    drain_with_stealing(ranges, me, &mut |index| {
                        if earliest.load(Ordering::Relaxed) < index {
                            return;
                        }
                        // SAFETY: `index` was claimed exactly once by
                        // this worker (range CAS protocol).
                        let item = unsafe { input[index].take() }
                            .expect("claimed index was already consumed");
                        if let Err(error) = f(&mut state, item) {
                            earliest.fetch_min(index, Ordering::Relaxed);
                            errors
                                .lock()
                                .expect("error list poisoned")
                                .push((index, error));
                        }
                    });
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        registry.run_scoped(jobs);
    }
    match errors
        .into_inner()
        .expect("error list poisoned")
        .into_iter()
        .min_by_key(|(index, _)| *index)
    {
        Some((_, error)) => Err(error),
        None => Ok(()),
    }
}

/// Conversion into a parallel iterator by value
/// (rayon `IntoParallelIterator`).
pub trait IntoParallelIterator: IntoIterator + Sized
where
    Self::Item: Send,
{
    /// Consume `self` and iterate it in parallel.
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}

impl<T: IntoIterator> IntoParallelIterator for T where T::Item: Send {}

/// Conversion into a parallel iterator over references
/// (rayon `IntoParallelRefIterator` / `IntoParallelRefMutIterator`).
pub trait IntoParallelRefIterator {
    /// Iterate shared references in parallel (rayon `par_iter`).
    fn par_iter<'a>(&'a self) -> ParIter<<&'a Self as IntoIterator>::Item>
    where
        &'a Self: IntoIterator,
        <&'a Self as IntoIterator>::Item: Send;

    /// Iterate exclusive references in parallel (rayon `par_iter_mut`).
    fn par_iter_mut<'a>(&'a mut self) -> ParIter<<&'a mut Self as IntoIterator>::Item>
    where
        &'a mut Self: IntoIterator,
        <&'a mut Self as IntoIterator>::Item: Send;
}

impl<C: ?Sized> IntoParallelRefIterator for C {
    fn par_iter<'a>(&'a self) -> ParIter<<&'a Self as IntoIterator>::Item>
    where
        &'a Self: IntoIterator,
        <&'a Self as IntoIterator>::Item: Send,
    {
        ParIter::from_vec(self.into_iter().collect())
    }

    fn par_iter_mut<'a>(&'a mut self) -> ParIter<<&'a mut Self as IntoIterator>::Item>
    where
        &'a mut Self: IntoIterator,
        <&'a mut Self as IntoIterator>::Item: Send,
    {
        ParIter::from_vec(self.into_iter().collect())
    }
}

/// The rayon prelude: the traits that put `par_iter`-style methods in
/// scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Serialises the tests that assert exact pool widths, so the env
    /// override test cannot race them.
    static WIDTH_TESTS: Mutex<()> = Mutex::new(());

    /// The width a pool built with `num_threads(requested)` actually gets
    /// under the ambient environment (the CI matrix exports
    /// `RAYON_NUM_THREADS` for whole test runs).
    fn effective_width(requested: usize) -> usize {
        std::env::var(NUM_THREADS_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(requested)
    }

    #[test]
    fn map_collect_matches_sequential() {
        let doubled: Vec<i32> = (0..5).into_par_iter().map(|x| 2 * x).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_and_mut_work_on_slices() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 6);
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn map_init_creates_at_most_one_state_per_worker() {
        let _guard = WIDTH_TESTS.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        Vec::<usize>::new()
                    },
                    |scratch, x| {
                        scratch.push(x);
                        x
                    },
                )
                .collect()
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        let created = inits.load(Ordering::Relaxed);
        assert!(created >= 1);
        assert!(
            created <= pool.current_num_threads(),
            "{created} states for {} workers",
            pool.current_num_threads()
        );
    }

    #[test]
    fn collect_into_result_short_circuits() {
        let ok: Result<Vec<i32>, String> = (0..3).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![0, 1, 2]);
        let err: Result<Vec<i32>, String> = (0..3)
            .into_par_iter()
            .map(|x| {
                if x == 1 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn flatten_and_try_for_each() {
        let nested: Vec<Vec<i32>> = vec![vec![1], vec![2, 3]];
        let flat: Vec<i32> = nested.into_par_iter().flatten().collect();
        assert_eq!(flat, vec![1, 2, 3]);
        let r: Result<(), &str> =
            flat.par_iter()
                .try_for_each(|&x| if x < 4 { Ok(()) } else { Err("big") });
        assert!(r.is_ok());
    }

    #[test]
    fn thread_pool_installs() {
        let _guard = WIDTH_TESTS.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), effective_width(4));
        assert_eq!(pool.install(|| 42), 42);
    }

    #[test]
    fn work_actually_runs_on_pool_threads() {
        let _guard = WIDTH_TESTS.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        if pool.current_num_threads() <= 1 {
            return; // forced serial by the env override: nothing to see
        }
        let caller = std::thread::current().id();
        let off_caller = AtomicUsize::new(0);
        pool.install(|| {
            (0..256usize).into_par_iter().for_each(|_| {
                if std::thread::current().id() != caller {
                    off_caller.fetch_add(1, Ordering::Relaxed);
                }
                // Enough work that the caller's help loop cannot finish
                // every chunk before a worker wakes up.
                std::thread::sleep(std::time::Duration::from_micros(50));
            })
        });
        assert!(
            off_caller.load(Ordering::Relaxed) > 0,
            "no item ever executed on a worker thread"
        );
    }

    #[test]
    fn nested_parallel_calls_do_not_deadlock() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let totals: Vec<usize> = pool.install(|| {
            (0..4usize)
                .into_par_iter()
                .map(|i| (0..10usize).into_par_iter().map(|j| i * 10 + j).sum())
                .collect()
        });
        assert_eq!(totals, vec![45, 145, 245, 345]);
    }

    #[test]
    fn width_parsing_rules() {
        // The parsing rules are pure — garbage, zero and whitespace are
        // exercised here without mutating the process environment.
        assert_eq!(crate::pool::parse_width("3"), Some(3));
        assert_eq!(crate::pool::parse_width(" 8 "), Some(8));
        assert_eq!(crate::pool::parse_width("0"), None);
        assert_eq!(crate::pool::parse_width("-2"), None);
        assert_eq!(crate::pool::parse_width("zero"), None);
        assert_eq!(crate::pool::parse_width(""), None);
    }

    #[test]
    fn env_override_wins_over_explicit_width() {
        // One set/restore cycle only (env mutation is process-global);
        // the width-asserting tests serialise on WIDTH_TESTS so a
        // transiently-overridden pool width cannot fail them.
        let _guard = WIDTH_TESTS.lock().unwrap();
        let previous = std::env::var(NUM_THREADS_ENV).ok();
        std::env::set_var(NUM_THREADS_ENV, "3");
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        match previous {
            Some(value) => std::env::set_var(NUM_THREADS_ENV, value),
            None => std::env::remove_var(NUM_THREADS_ENV),
        }
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn split_in_order_concatenates_back() {
        for n in [0usize, 1, 2, 7, 64, 65] {
            for w in [1usize, 2, 3, 8, 100] {
                let chunks = split_in_order((0..n).collect::<Vec<_>>(), w);
                assert!(chunks.len() <= w.max(1));
                assert!(chunks.len() <= n.max(1));
                let glued: Vec<usize> = chunks.concat();
                assert_eq!(glued, (0..n).collect::<Vec<_>>(), "n={n} w={w}");
            }
        }
    }
}
