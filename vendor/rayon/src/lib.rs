//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate mirrors
//! the slice of rayon's API the workspace uses — `par_iter`,
//! `into_par_iter`, `par_iter_mut`, `map`, `map_init`, `flatten`,
//! `collect`, `try_for_each`, and the `ThreadPool`/`ThreadPoolBuilder`
//! pair — but executes everything **sequentially** on the calling thread.
//!
//! Correctness-wise this is a legal rayon schedule (rayon never promises a
//! particular interleaving), so every test that checks physics or
//! iteration counts behaves identically.  Wall-clock scaling studies are
//! obviously degenerate until the workspace entry for `rayon` is pointed
//! back at crates.io; the concurrency schemes remain exercised as
//! *orderings* (which is what the figure tests assert).

/// Sequential stand-in for a rayon parallel iterator.
///
/// Wraps an ordinary [`Iterator`] and exposes the subset of the
/// `ParallelIterator` combinators used by the workspace.
pub struct SeqParIter<I>(I);

impl<I: Iterator> SeqParIter<I> {
    /// Map every item (rayon `ParallelIterator::map`).
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> SeqParIter<std::iter::Map<I, F>> {
        SeqParIter(self.0.map(f))
    }

    /// Map with per-"thread" scratch state (rayon `map_init`).  The
    /// sequential stand-in creates the state exactly once.
    pub fn map_init<T, U, INIT, F>(
        self,
        mut init: INIT,
        mut f: F,
    ) -> SeqParIter<impl Iterator<Item = U>>
    where
        INIT: FnMut() -> T,
        F: FnMut(&mut T, I::Item) -> U,
    {
        let mut state = init();
        SeqParIter(self.0.map(move |item| f(&mut state, item)))
    }

    /// Flatten nested iterables (rayon `flatten`).
    pub fn flatten(self) -> SeqParIter<std::iter::Flatten<I>>
    where
        I::Item: IntoIterator,
    {
        SeqParIter(self.0.flatten())
    }

    /// Collect into any `FromIterator` target, including
    /// `Result<Vec<_>, E>` (rayon `collect`).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Apply `f` to every item (rayon `for_each`).
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Fallible `for_each`, stopping at the first error
    /// (rayon `try_for_each`).
    pub fn try_for_each<E, F: FnMut(I::Item) -> Result<(), E>>(mut self, f: F) -> Result<(), E> {
        self.0.try_for_each(f)
    }

    /// Sum the items (rayon `sum`).
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
}

/// Conversion into a (sequential) "parallel" iterator by value
/// (rayon `IntoParallelIterator`).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Consume `self` and iterate it.
    fn into_par_iter(self) -> SeqParIter<Self::IntoIter> {
        SeqParIter(self.into_iter())
    }
}

impl<T: IntoIterator> IntoParallelIterator for T {}

/// Conversion into a (sequential) "parallel" iterator over references
/// (rayon `IntoParallelRefIterator` / `IntoParallelRefMutIterator`).
pub trait IntoParallelRefIterator {
    /// Iterate shared references (rayon `par_iter`).
    fn par_iter<'a>(&'a self) -> SeqParIter<<&'a Self as IntoIterator>::IntoIter>
    where
        &'a Self: IntoIterator;

    /// Iterate exclusive references (rayon `par_iter_mut`).
    fn par_iter_mut<'a>(&'a mut self) -> SeqParIter<<&'a mut Self as IntoIterator>::IntoIter>
    where
        &'a mut Self: IntoIterator;
}

impl<C: ?Sized> IntoParallelRefIterator for C {
    fn par_iter<'a>(&'a self) -> SeqParIter<<&'a Self as IntoIterator>::IntoIter>
    where
        &'a Self: IntoIterator,
    {
        SeqParIter(self.into_iter())
    }

    fn par_iter_mut<'a>(&'a mut self) -> SeqParIter<<&'a mut Self as IntoIterator>::IntoIter>
    where
        &'a mut Self: IntoIterator,
    {
        SeqParIter(self.into_iter())
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] — never actually
/// produced by the stand-in.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Stand-in for `rayon::ThreadPool`: remembers the requested width but
/// runs everything on the calling thread.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` "inside" the pool (sequentially, on the calling thread).
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        op()
    }

    /// The thread count the pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Stand-in for `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a thread count (recorded, not acted on).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool; the stand-in cannot fail.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }
}

/// The rayon prelude: the traits that put `par_iter`-style methods in
/// scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, SeqParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_matches_sequential() {
        let doubled: Vec<i32> = (0..5).into_par_iter().map(|x| 2 * x).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_and_mut_work_on_slices() {
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 6);
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn map_init_reuses_state() {
        let mut inits = 0;
        let out: Vec<usize> = (0..4usize)
            .into_par_iter()
            .map_init(
                || {
                    inits += 1;
                    Vec::<usize>::new()
                },
                |scratch, x| {
                    scratch.push(x);
                    scratch.len()
                },
            )
            .collect();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn collect_into_result_short_circuits() {
        let ok: Result<Vec<i32>, String> = (0..3).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![0, 1, 2]);
        let err: Result<Vec<i32>, String> = (0..3)
            .into_par_iter()
            .map(|x| {
                if x == 1 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn flatten_and_try_for_each() {
        let nested: Vec<Vec<i32>> = vec![vec![1], vec![2, 3]];
        let flat: Vec<i32> = nested.into_par_iter().flatten().collect();
        assert_eq!(flat, vec![1, 2, 3]);
        let r: Result<(), &str> =
            flat.par_iter()
                .try_for_each(|&x| if x < 4 { Ok(()) } else { Err("big") });
        assert!(r.is_ok());
    }

    #[test]
    fn thread_pool_installs() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 42), 42);
    }
}
