//! The worker-pool engine behind the parallel iterators.
//!
//! A [`ThreadPool`] owns a set of OS worker threads draining a shared FIFO
//! job queue.  Parallel-iterator terminals package their work as
//! index-ordered chunk jobs, enqueue them, and block until a *scope latch*
//! reports every chunk finished; because the caller never returns while
//! its chunks are in flight, chunk closures may safely borrow from the
//! caller's stack even though the queue itself stores `'static` jobs (the
//! lifetime is erased with `transmute` and re-established by the latch —
//! the same soundness argument real rayon's `scope` makes).
//!
//! Two properties keep the pool deadlock-free without work stealing:
//!
//! * a blocked scope owner *helps*: while waiting for its latch it pops
//!   and executes jobs from the same queue, so a pool whose workers are
//!   all blocked inside nested waits still makes progress;
//! * a parallel call issued *from a worker thread of the same pool* is
//!   executed inline instead of enqueued (see
//!   [`Registry::on_worker_thread`]), so nested parallelism cannot wait
//!   on a queue nobody is free to drain.
//!
//! Worker panics never kill a worker: every chunk job runs under
//! `catch_unwind` and the payload of the lowest-indexed panicking chunk is
//! re-thrown on the scope owner's thread once the scope completes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Environment variable overriding the width of **every** pool built after
/// it is set (the global pool and explicit [`ThreadPoolBuilder`] pools
/// alike).
///
/// This is deliberately stronger than real rayon, where the variable only
/// sizes the global pool: the CI determinism matrix relies on forcing the
/// whole workspace — including solvers that size their own pools from
/// `Problem::num_threads` — to 1, 2 and 8 threads and observing bit-for-bit
/// identical physics.  Values that are empty, non-numeric or zero are
/// ignored.
pub const NUM_THREADS_ENV: &str = "RAYON_NUM_THREADS";

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Shared state of one pool: the job queue plus identity and width.
pub(crate) struct Registry {
    /// Process-unique id used to recognise "am I already a worker of this
    /// pool" for the inline nested-parallelism path.
    id: usize,
    /// Effective thread count (after the env override).
    width: usize,
    state: Mutex<QueueState>,
    job_ready: Condvar,
}

thread_local! {
    /// Set on worker threads to the id of the registry they serve.
    static WORKER_OF: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
    /// Stack of pools entered via [`ThreadPool::install`] on this thread.
    static INSTALLED: std::cell::RefCell<Vec<Arc<Registry>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

static NEXT_REGISTRY_ID: AtomicUsize = AtomicUsize::new(0);

/// Bookkeeping for one batch of chunk jobs: how many are still running and
/// the panic payload (if any) of the lowest-indexed chunk that panicked.
struct ScopeSync {
    state: Mutex<ScopeState>,
    done: Condvar,
}

struct ScopeState {
    remaining: usize,
    panic: Option<(usize, Box<dyn std::any::Any + Send>)>,
}

impl Registry {
    fn new(width: usize) -> Arc<Self> {
        Arc::new(Self {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            width,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
        })
    }

    /// Effective thread count of this pool.
    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// `true` when the calling thread is one of this pool's workers — the
    /// signal to run nested parallel calls inline.
    pub(crate) fn on_worker_thread(&self) -> bool {
        WORKER_OF.with(|w| w.get()) == Some(self.id)
    }

    /// Pop one job if any is queued.
    fn try_pop(&self) -> Option<Job> {
        self.state
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .pop_front()
    }

    /// Main loop of a worker thread: execute jobs until shutdown.
    fn worker_loop(self: Arc<Self>) {
        WORKER_OF.with(|w| w.set(Some(self.id)));
        loop {
            let job = {
                let mut st = self.state.lock().expect("pool queue poisoned");
                loop {
                    if let Some(job) = st.jobs.pop_front() {
                        break Some(job);
                    }
                    if st.shutdown {
                        break None;
                    }
                    st = self.job_ready.wait(st).expect("pool queue poisoned");
                }
            };
            match job {
                Some(job) => job(),
                None => return,
            }
        }
    }

    /// Run `chunks` to completion on the pool, blocking until every chunk
    /// finished and re-throwing the panic of the lowest-indexed chunk that
    /// panicked.
    ///
    /// Chunk closures may borrow from the caller's stack: this function
    /// does not return while any of them can still run.  The caller helps
    /// drain the queue while it waits, so it acts as one extra worker for
    /// the duration of the scope.
    pub(crate) fn run_scoped<'scope>(&self, chunks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if chunks.is_empty() {
            return;
        }
        // Defensive inline path: a zero/one-width pool has no workers, and
        // a worker of this very pool must never block on its own queue.
        if self.width <= 1 || self.on_worker_thread() {
            for chunk in chunks {
                chunk();
            }
            return;
        }

        let sync = Arc::new(ScopeSync {
            state: Mutex::new(ScopeState {
                remaining: chunks.len(),
                panic: None,
            }),
            done: Condvar::new(),
        });

        {
            let mut st = self.state.lock().expect("pool queue poisoned");
            for (index, chunk) in chunks.into_iter().enumerate() {
                let sync = Arc::clone(&sync);
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(chunk));
                    let mut scope = sync.state.lock().expect("scope latch poisoned");
                    if let Err(payload) = result {
                        match &scope.panic {
                            Some((winner, _)) if *winner <= index => {}
                            _ => scope.panic = Some((index, payload)),
                        }
                    }
                    scope.remaining -= 1;
                    if scope.remaining == 0 {
                        sync.done.notify_all();
                    }
                });
                // SAFETY: only the lifetime is transmuted.  The job cannot
                // outlive the `'scope` borrows it captures because this
                // function blocks on the scope latch below until
                // `remaining == 0`, i.e. until the job either ran to
                // completion or was dropped — and the queue is drained by
                // this loop or the workers, never leaked.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'scope>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(job)
                };
                st.jobs.push_back(job);
            }
        }
        self.job_ready.notify_all();

        // Help while waiting: execute queued jobs (ours or another
        // scope's) until our latch opens.
        loop {
            if let Some(job) = self.try_pop() {
                job();
                continue;
            }
            let mut scope = sync.state.lock().expect("scope latch poisoned");
            while scope.remaining > 0 {
                // Wake up periodically to re-check the queue: another
                // scope may have enqueued work this thread could be
                // helping with (completion itself notifies `done`).
                let (guard, timeout) = sync
                    .done
                    .wait_timeout(scope, std::time::Duration::from_millis(1))
                    .expect("scope latch poisoned");
                scope = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if scope.remaining == 0 {
                if let Some((_, payload)) = scope.panic.take() {
                    drop(scope);
                    std::panic::resume_unwind(payload);
                }
                return;
            }
        }
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] when the operating
/// system refuses to spawn a worker thread (resource exhaustion).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    reason: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed: {}", self.reason)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A shared worker pool executing the parallel-iterator combinators.
///
/// Built by [`ThreadPoolBuilder`]; [`ThreadPool::install`] makes the pool
/// the target of every `par_iter` call issued (on this thread) inside the
/// closure.  Parallel calls outside any `install` use the lazily-created
/// global pool.  Dropping the pool joins its workers.
pub struct ThreadPool {
    registry: Arc<Registry>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    fn build_with_width(width: usize) -> Result<Self, ThreadPoolBuildError> {
        let registry = Registry::new(width);
        // A one-wide pool runs everything inline on the caller; spawning
        // its single worker would only add handoff latency.
        let mut workers = Vec::new();
        if width > 1 {
            workers.reserve(width);
            for index in 0..width {
                let worker_registry = Arc::clone(&registry);
                let spawned = std::thread::Builder::new()
                    .name(format!("rayon-worker-{}-{index}", registry.id))
                    .spawn(move || worker_registry.worker_loop());
                match spawned {
                    Ok(handle) => workers.push(handle),
                    Err(error) => {
                        // Wind down whatever did spawn before reporting.
                        {
                            let mut st = registry.state.lock().expect("pool queue poisoned");
                            st.shutdown = true;
                        }
                        registry.job_ready.notify_all();
                        for handle in workers {
                            let _ = handle.join();
                        }
                        return Err(ThreadPoolBuildError {
                            reason: format!("spawning worker {index} of {width}: {error}"),
                        });
                    }
                }
            }
        }
        Ok(Self { registry, workers })
    }

    /// Run `op` with this pool installed as the target of every parallel
    /// call `op` issues on the calling thread.  `op` itself runs on the
    /// calling thread; the pool's workers execute the chunks.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        struct Uninstall;
        impl Drop for Uninstall {
            fn drop(&mut self) {
                INSTALLED.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        INSTALLED.with(|stack| stack.borrow_mut().push(Arc::clone(&self.registry)));
        let _guard = Uninstall;
        op()
    }

    /// The effective thread count the pool was built with (after the
    /// [`NUM_THREADS_ENV`] override).
    pub fn current_num_threads(&self) -> usize {
        self.registry.width()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.registry.state.lock().expect("pool queue poisoned");
            st.shutdown = true;
        }
        self.registry.job_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Builder for [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a thread count; `0` (the default) means the machine's
    /// available parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.  Width resolution order: the [`NUM_THREADS_ENV`]
    /// override, then the explicit [`ThreadPoolBuilder::num_threads`]
    /// request, then the machine default.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = env_num_threads()
            .or(if self.num_threads > 0 {
                Some(self.num_threads)
            } else {
                None
            })
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        ThreadPool::build_with_width(width)
    }
}

/// Parse a [`NUM_THREADS_ENV`]-style value; `None` when unparsable or
/// zero (pure, so the parsing rules are testable without touching the
/// process environment).
pub(crate) fn parse_width(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Read and parse the env override; `None` when unset or invalid.
fn env_num_threads() -> Option<usize> {
    std::env::var(NUM_THREADS_ENV)
        .ok()
        .and_then(|raw| parse_width(&raw))
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The shared global pool, created on first use.
fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("failed to build the global thread pool")
    })
}

/// The pool a parallel call issued on this thread should run on: the
/// innermost [`ThreadPool::install`] if any, else the global pool.
pub(crate) fn current_registry() -> Arc<Registry> {
    INSTALLED
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(&global_pool().registry))
}
