//! Offline miniature of the `criterion` benchmark harness.
//!
//! Mirrors the slice of criterion's API the workspace benches use —
//! `Criterion`, `benchmark_group` / `sample_size` / `bench_with_input` /
//! `bench_function` / `finish`, `BenchmarkId`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, `criterion_group!` and `criterion_main!` —
//! with a deliberately simple measurement loop: a short warm-up, then the
//! configured number of timed samples, reporting the median per-iteration
//! time as text.  No statistics, plots or saved baselines; point the
//! workspace `criterion` entry back at crates.io for real measurements.

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted, not acted on, by the
/// miniature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last measurement.
    last_nanos: f64,
}

impl Bencher {
    fn measure(&mut self, mut one_iteration: impl FnMut() -> Duration) {
        // Warm-up.
        let _ = one_iteration();
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| one_iteration().as_nanos() as f64)
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        self.last_nanos = times[times.len() / 2];
    }

    /// Time `routine`, called once per sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        self.measure(|| {
            let t0 = Instant::now();
            let out = routine();
            let dt = t0.elapsed();
            std::hint::black_box(out);
            dt
        });
    }

    /// Time `routine` on inputs built by `setup`; only the routine is
    /// timed.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        self.measure(|| {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            let dt = t0.elapsed();
            std::hint::black_box(out);
            dt
        });
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples,
            last_nanos: 0.0,
        };
        f(&mut bencher);
        println!(
            "{}/{id}: median {} over {} samples",
            self.name,
            format_nanos(bencher.last_nanos),
            self.samples
        );
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("bench", f);
        group.finish();
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("ge", "n8").to_string(), "ge/n8");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }

    #[test]
    fn nanos_formatting_scales() {
        assert_eq!(format_nanos(500.0), "500 ns");
        assert_eq!(format_nanos(2_500.0), "2.500 µs");
        assert_eq!(format_nanos(3_000_000.0), "3.000 ms");
        assert_eq!(format_nanos(4.2e9), "4.200 s");
    }
}
