//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the unbounded MPMC channel API the halo-exchange layer uses.
//! Unlike `std::sync::mpsc`, both endpoints are `Send + Sync + Clone`
//! (matching crossbeam), which the rank-mailbox pattern relies on.

/// Unbounded MPMC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Error returned when sending fails (never happens for the
    /// always-connected stand-in, but part of the API).
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`] on an empty channel.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was waiting.
        Empty,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty channel")
        }
    }

    type Queue<T> = Arc<Mutex<VecDeque<T>>>;

    /// Sending endpoint.
    pub struct Sender<T>(Queue<T>);

    /// Receiving endpoint.
    pub struct Receiver<T>(Queue<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.lock().expect("channel poisoned").push_back(value);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message if one is waiting.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0
                .lock()
                .expect("channel poisoned")
                .pop_front()
                .ok_or(TryRecvError::Empty)
        }
    }

    /// Create a connected unbounded channel pair.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let queue: Queue<T> = Arc::new(Mutex::new(VecDeque::new()));
        (Sender(queue.clone()), Receiver(queue))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_order_and_empty() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn endpoints_are_send_sync_clone() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let (tx, rx) = unbounded::<u64>();
        assert_send_sync(&tx);
        assert_send_sync(&rx);
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(9).unwrap())
            .join()
            .unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
    }
}
