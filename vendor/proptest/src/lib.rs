//! Offline miniature of the `proptest` property-testing harness.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the slice of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! * range strategies (`-1.0f64..1.0`, `1usize..6`, `2usize..=24`,
//!   `0u64..1000`, …), tuple strategies up to arity 6, [`Just`],
//!   [`collection::vec`] and the [`prop_oneof!`] union;
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from the real crate, chosen for zero dependencies:
//! values are drawn from a deterministic SplitMix64 stream seeded by the
//! test name (every run explores the same cases — failures are always
//! reproducible), rejected assumptions skip the case rather than retry,
//! and there is **no shrinking**: a failing case panics with the values
//! embedded in the assertion message instead.

use std::ops::{Range, RangeInclusive};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic SplitMix64 random stream.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from a tag (the test name), so every test has its
    /// own reproducible case sequence.
    pub fn deterministic(tag: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in tag.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty choice range");
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy producing a fixed value (proptest `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between strategies of a common value type
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build a union from its arms; at least one is required.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Requested length range for [`vec()`](vec()).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`](vec()).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($arm)),+];
        $crate::Union::new(arms)
    }};
}

/// Assert inside a property test (panics; no shrinking in the miniature).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when an assumption does not hold.
///
/// Must appear inside a [`proptest!`] body (it returns from the per-case
/// closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests.  Mirrors `proptest::proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0usize..10, v in collection::vec(-1.0f64..1.0, 1..8)) {
///         prop_assert!(v.len() >= 1);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let case = move || -> ::std::result::Result<(), ()> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let _ = case();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_tag() {
        let mut a = TestRng::deterministic("tag");
        let mut b = TestRng::deterministic("tag");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (1usize..6).generate(&mut rng);
            assert!((1..6).contains(&u));
            let i = (2usize..=4).generate(&mut rng);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn map_flat_map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (1usize..4)
            .prop_flat_map(|n| collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
        let pair = (0usize..2, -1.0f64..0.0).generate(&mut rng);
        assert!(pair.0 < 2 && pair.1 < 0.0);
    }

    #[test]
    fn oneof_only_draws_from_arms() {
        let mut rng = TestRng::deterministic("oneof");
        let strat = prop_oneof![-1.0f64..-0.5, 0.5f64..1.0];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((-1.0..-0.5).contains(&v) || (0.5..1.0).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0usize..100, y in -1.0f64..1.0) {
            prop_assume!(x > 0);
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
