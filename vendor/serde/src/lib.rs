//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, and nothing in the
//! workspace actually serialises data yet — the `#[derive(Serialize,
//! Deserialize)]` attributes on the domain types only declare intent.  This
//! crate keeps those derives compiling by providing the two marker traits
//! and re-exporting no-op derive macros.  When a real serialisation
//! consumer lands (JSON result dumps, checkpointing), point the workspace
//! `serde` entry back at crates.io; every `#[derive]` in the tree is
//! already in place.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
