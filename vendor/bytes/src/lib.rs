//! Offline stand-in for the `bytes` crate.
//!
//! Implements the byte-buffer API slice used by the halo-exchange wire
//! format: `BytesMut` as an append-only build buffer, `Bytes` as a
//! cheaply cloneable read cursor, and the little-endian [`Buf`]/[`BufMut`]
//! accessors for `u64` and `f64`.

use std::sync::Arc;

/// Read-side accessors (subset of `bytes::Buf`).
pub trait Buf {
    /// Remaining bytes in the buffer.
    fn remaining(&self) -> usize;

    /// Consume and return the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take_bytes(8));
        u64::from_le_bytes(raw)
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side accessors (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, value: f64) {
        self.put_u64_le(value.to_bits());
    }
}

/// Immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    cursor: usize,
}

impl Bytes {
    /// Wrap a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
            cursor: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.cursor
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let start = self.cursor;
        self.cursor += n;
        &self.data[start..self.cursor]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.cursor..]
    }
}

/// Growable byte buffer for building messages.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Shorten to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
            cursor: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self { data: src.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64_f64() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(42);
        buf.put_f64_le(-1.5);
        let mut frozen = buf.freeze();
        assert_eq!(frozen.len(), 16);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(frozen.get_f64_le(), -1.5);
        assert!(frozen.is_empty());
    }

    #[test]
    fn deref_exposes_unread_tail() {
        let mut buf = BytesMut::default();
        buf.put_u64_le(7);
        let frozen = buf.freeze();
        assert_eq!(frozen[..].len(), 8);
        let rebuilt = BytesMut::from(&frozen[..]);
        assert_eq!(rebuilt.len(), 8);
    }

    #[test]
    fn truncate_shortens() {
        let mut buf = BytesMut::from(&[1u8, 2, 3, 4][..]);
        buf.truncate(2);
        assert_eq!(buf.len(), 2);
        assert_eq!(&buf.freeze()[..], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1, 2, 3]);
        let _ = b.get_u64_le();
    }
}
